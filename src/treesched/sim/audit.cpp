#include "treesched/sim/audit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "treesched/sim/priority.hpp"
#include "treesched/util/csum.hpp"
#include "treesched/util/table.hpp"

namespace treesched::sim {

namespace {

constexpr Time kInf = std::numeric_limits<double>::infinity();

std::string fmt(double x) {
  std::ostringstream os;
  os << x;
  return os.str();
}

/// Aggregate of all bursts of one work item (job, hop, chunk).
struct ItemAgg {
  double work = 0.0;
  Time first = kInf;
  Time last = -1.0;
  bool ran() const { return last >= 0.0; }
};

/// Everything the audit derives about one job's walk down its path.
struct JobAudit {
  const std::vector<NodeId>* path = nullptr;  ///< empty => never dispatched
  std::int32_t chunks = 1;
  double chunk_size = 0.0;
  std::vector<std::vector<ItemAgg>> router;   ///< [hop][chunk], hops 0..len-2
  ItemAgg leaf;
  std::vector<std::vector<Time>> avail;       ///< availability window starts
  Time leaf_avail = -1.0;

  std::size_t len() const { return path ? path->size() : 0; }
  /// Index of v on the path, -1 if absent. Paths are short; linear is fine.
  int hop_of(NodeId v) const {
    for (std::size_t i = 0; i < len(); ++i)
      if ((*path)[i] == v) return static_cast<int>(i);
    return -1;
  }
};

/// Strictly higher priority, in the engine's exact lexicographic order. Key
/// inputs (instance sizes, releases, burst endpoints) round-trip bit-exactly
/// through the run log, so no tolerance is needed — and using one would flag
/// correct near-tie decisions.
bool higher_priority(const PriorityKey& x, const PriorityKey& y) {
  return x < y;
}

// ---------------------------------------------------------------------------
// Overload mode: admission-control records (shedcfg / shed / reject / admitf)
// ---------------------------------------------------------------------------

/// Per-job view of the admission-control records, shared by the clean and
/// fault audits. Cross-record sanity (a job both shed and rejected, records
/// naming unknown jobs, shed records without a shed policy) is reported here.
struct OverloadAudit {
  bool active = false;       ///< a shed policy was configured
  std::vector<Time> shed_t;  ///< eviction time; -1 = never shed
  std::vector<char> rejected;
  std::vector<double> reject_f, reject_bound;
  std::vector<char> has_admitf;
  std::vector<double> admit_f, admit_bound;

  bool shed(std::size_t j) const { return shed_t[j] >= 0.0; }
};

/// Requires log.paths.size() == instance.job_count() (checked by callers).
OverloadAudit build_overload_audit(const Instance& instance, const RunLog& log,
                                   AuditReport& rep) {
  OverloadAudit ov;
  const std::size_t n_jobs = uidx(instance.job_count());
  ov.active = log.shed.enabled();
  ov.shed_t.assign(n_jobs, -1.0);
  ov.rejected.assign(n_jobs, 0);
  ov.reject_f.assign(n_jobs, -1.0);
  ov.reject_bound.assign(n_jobs, -1.0);
  ov.has_admitf.assign(n_jobs, 0);
  ov.admit_f.assign(n_jobs, -1.0);
  ov.admit_bound.assign(n_jobs, -1.0);
  if (!ov.active && !log.sheds.empty())
    rep.fail("log carries admission-control records but no shed policy");
  for (const ShedRecord& sr : log.sheds) {
    if (sr.job < 0 || uidx(sr.job) >= n_jobs) {
      rep.fail("admission record names unknown job " + std::to_string(sr.job));
      continue;
    }
    const std::size_t j = uidx(sr.job);
    switch (sr.kind) {
      case ShedRecord::Kind::kShed:
        if (ov.shed(j))
          rep.fail("job " + std::to_string(sr.job) + " shed twice");
        ov.shed_t[j] = sr.t;
        break;
      case ShedRecord::Kind::kReject:
        if (ov.rejected[j])
          rep.fail("job " + std::to_string(sr.job) + " rejected twice");
        ov.rejected[j] = 1;
        ov.reject_f[j] = sr.f;
        ov.reject_bound[j] = sr.bound;
        break;
      case ShedRecord::Kind::kAdmit:
        ov.has_admitf[j] = 1;
        ov.admit_f[j] = sr.f;
        ov.admit_bound[j] = sr.bound;
        break;
    }
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    if (ov.rejected[j] && ov.shed(j))
      rep.fail("job " + std::to_string(j) + " both rejected and shed");
    if (ov.rejected[j] && !log.paths[j].empty())
      rep.fail("rejected job " + std::to_string(j) +
               " has a recorded path (was dispatched anyway)");
    if (ov.shed(j) && log.paths[j].empty())
      rep.fail("shed job " + std::to_string(j) +
               " has no recorded path (was never admitted)");
  }
  return ov;
}

// ---------------------------------------------------------------------------
// Fault mode: recovery-invariant audit for fault-injected runs
// ---------------------------------------------------------------------------

/// Audits a run whose log carries fault records. The clean-run invariants
/// that survive faults are re-checked epoch-aware (a job's path changes at
/// each re-dispatch); on top the recovery invariants hold:
///   - no work progresses at a node inside one of its down windows;
///   - every recorded burst rate equals speed x slowdown factor, and no
///     burst spans a factor change;
///   - re-dispatch chains are consistent: `from` is the job's current leaf
///     and is down at the instant, `to` is a live machine, and the final
///     `to` matches the recorded final path;
///   - the job fully forwards through every router of its final path and
///     performs exactly the required machine work at its final leaf within
///     the final epoch (lost partial work is extra, never missing);
///   - recovery precedence: machine work at the final leaf starts only
///     after every router burst of the job has ended.
/// Priority consistency and lemma margins are skipped (noted): crashes
/// legitimately reorder work, and the paper's bounds presuppose a
/// fault-free network.
AuditReport audit_fault_run(const Instance& instance, const RunLog& log,
                            const AuditOptions& opts) {
  AuditReport rep;
  const double tol = opts.tol;
  const Tree& tree = instance.tree();
  const std::size_t n_jobs = uidx(instance.job_count());
  const std::size_t n_nodes = uidx(tree.node_count());

  if (log.paths.size() != n_jobs || log.completion.size() != n_jobs) {
    rep.fail("run log covers " + std::to_string(log.paths.size()) +
             " job(s) but the instance has " + std::to_string(n_jobs));
    return rep;
  }
  if (log.speeds.size() != n_nodes) {
    rep.fail("run log has " + std::to_string(log.speeds.size()) +
             " speed(s) but the tree has " + std::to_string(n_nodes) +
             " node(s)");
    return rep;
  }
  if (log.router_chunk_size > 0.0) {
    rep.fail("fault-injected runs require whole-job forwarding "
             "(router_chunk_size 0), log has chunk " +
             fmt(log.router_chunk_size));
    return rep;
  }
  const OverloadAudit ov = build_overload_audit(instance, log, rep);

  // --- fault timeline sanity; down windows and slowdown steps per node -----
  struct Window {
    Time lo = 0.0;
    Time hi = kInf;
  };
  std::vector<std::vector<Window>> down(n_nodes);
  std::vector<std::vector<std::pair<Time, double>>> factor_steps(n_nodes);
  std::vector<std::vector<FaultRecord>> redis(n_jobs);
  {
    std::vector<char> is_down(n_nodes, 0), is_edge_down(n_nodes, 0);
    Time prev = 0.0;
    for (const FaultRecord& fr : log.faults) {
      if (fr.t < prev - tol) {
        rep.fail("fault log out of order at t=" + fmt(fr.t));
        return rep;
      }
      prev = std::max(prev, fr.t);
      if (fr.node < 0 || uidx(fr.node) >= n_nodes) {
        rep.fail("fault record names unknown node " + std::to_string(fr.node));
        return rep;
      }
      const std::size_t v = uidx(fr.node);
      switch (fr.kind) {
        case FaultRecord::Kind::kNodeDown:
          if (is_down[v]) rep.fail("node " + std::to_string(fr.node) +
                                   " down twice without recovering");
          is_down[v] = 1;
          down[v].push_back({fr.t, kInf});
          break;
        case FaultRecord::Kind::kNodeUp:
          if (!is_down[v]) {
            rep.fail("node " + std::to_string(fr.node) +
                     " recovered without being down");
          } else {
            is_down[v] = 0;
            down[v].back().hi = fr.t;
          }
          break;
        case FaultRecord::Kind::kEdgeDown:
          if (is_edge_down[v]) rep.fail("edge to node " +
                                        std::to_string(fr.node) +
                                        " severed twice");
          is_edge_down[v] = 1;
          break;
        case FaultRecord::Kind::kEdgeUp:
          if (!is_edge_down[v]) rep.fail("edge to node " +
                                         std::to_string(fr.node) +
                                         " restored without being severed");
          is_edge_down[v] = 0;
          break;
        case FaultRecord::Kind::kSlow:
          if (fr.factor <= 0.0)
            rep.fail("slowdown factor " + fmt(fr.factor) + " on node " +
                     std::to_string(fr.node) + " is not positive");
          factor_steps[v].push_back({fr.t, fr.factor});
          break;
        case FaultRecord::Kind::kRedispatch:
          if (fr.job < 0 || uidx(fr.job) >= n_jobs) {
            rep.fail("redispatch names unknown job " + std::to_string(fr.job));
            return rep;
          }
          if (fr.to < 0 || uidx(fr.to) >= n_nodes) {
            rep.fail("redispatch names unknown target node " +
                     std::to_string(fr.to));
            return rep;
          }
          redis[uidx(fr.job)].push_back(fr);
          break;
      }
    }
  }
  if (!rep.ok) return rep;

  // The engine never sheds a re-dispatched job and never re-dispatches a
  // shed one; a log claiming both for the same job is inconsistent.
  for (std::size_t j = 0; j < n_jobs; ++j)
    if (ov.shed(j) && !redis[j].empty())
      rep.fail("job " + std::to_string(j) + " was both shed and re-dispatched");

  auto down_at = [&](NodeId v, Time t) {
    for (const Window& w : down[uidx(v)])
      if (w.lo <= t && t < w.hi) return true;
    return false;
  };
  auto factor_at = [&](NodeId v, Time t) {
    double f = 1.0;
    for (const auto& [st, sf] : factor_steps[uidx(v)]) {
      if (st > t) break;
      f = sf;
    }
    return f;
  };

  // --- per-job epochs from the re-dispatch chain ---------------------------
  struct Epoch {
    Time start = 0.0;
    const std::vector<NodeId>* path = nullptr;
  };
  std::vector<std::vector<Epoch>> epochs(n_jobs);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const auto& path = log.paths[j];
    if (path.empty()) {
      if (!ov.rejected[j])
        rep.fail("job " + std::to_string(j) +
                 " has no recorded path (never dispatched)");
      continue;
    }
    bool ok = true;
    for (const NodeId v : path)
      if (v < 0 || uidx(v) >= n_nodes) {
        rep.fail("job " + std::to_string(j) + " path names unknown node " +
                 std::to_string(v));
        ok = false;
      }
    if (!ok) continue;
    const NodeId final_leaf = path.back();
    if (!tree.is_leaf(final_leaf) || path != tree.path_to(final_leaf)) {
      rep.fail("job " + std::to_string(j) +
               " recorded path is not the tree path to machine " +
               std::to_string(final_leaf));
      continue;
    }
    // Chain: initial leaf -> redispatch targets -> final leaf.
    const auto& chain = redis[j];
    NodeId cur =
        chain.empty() ? final_leaf : chain.front().node;  // initial leaf
    if (!tree.is_leaf(cur)) {
      rep.fail("job " + std::to_string(j) + " initial leaf " +
               std::to_string(cur) + " is not a machine");
      continue;
    }
    auto& ep = epochs[j];
    ep.push_back({0.0, &tree.path_to(cur)});
    for (const FaultRecord& fr : chain) {
      if (fr.node != cur) {
        rep.fail("redispatch of job " + std::to_string(j) + " at t=" +
                 fmt(fr.t) + " moves it from node " + std::to_string(fr.node) +
                 " but it was assigned to " + std::to_string(cur));
        ok = false;
        break;
      }
      if (!down_at(fr.node, fr.t)) {
        rep.fail("job " + std::to_string(j) + " re-dispatched at t=" +
                 fmt(fr.t) + " away from node " + std::to_string(fr.node) +
                 " which was not down");
      }
      if (!tree.is_leaf(fr.to) || down_at(fr.to, fr.t)) {
        rep.fail("job " + std::to_string(j) + " re-dispatched at t=" +
                 fmt(fr.t) + " to node " + std::to_string(fr.to) +
                 " which is not a live machine");
      }
      cur = fr.to;
      ep.push_back({fr.t, &tree.path_to(cur)});
    }
    if (!ok) {
      epochs[j].clear();
      continue;
    }
    if (cur != final_leaf) {
      rep.fail("job " + std::to_string(j) + " re-dispatch chain ends at node " +
               std::to_string(cur) + " but the recorded final machine is " +
               std::to_string(final_leaf));
      epochs[j].clear();
    }
  }

  // --- per-segment checks ---------------------------------------------------
  struct LeafAgg {
    double work = 0.0;
    Time first = kInf;
    Time last = -1.0;
  };
  std::vector<LeafAgg> final_leaf_work(n_jobs);
  std::vector<Time> last_router_end(n_jobs, -1.0);
  // Total work of job j on node v across all epochs.
  std::map<std::pair<std::size_t, NodeId>, double> node_work;
  std::vector<std::vector<const Segment*>> by_node(n_nodes);
  for (const Segment& s : log.segments) {
    ++rep.segments_checked;
    if (s.job < 0 || uidx(s.job) >= n_jobs) {
      rep.fail("segment names unknown job " + std::to_string(s.job));
      continue;
    }
    if (s.node < 0 || uidx(s.node) >= n_nodes) {
      rep.fail("segment names unknown node " + std::to_string(s.node));
      continue;
    }
    if (s.t1 < s.t0 - tol) {
      rep.fail("segment of job " + std::to_string(s.job) + " on node " +
               std::to_string(s.node) + " has negative duration [" +
               fmt(s.t0) + "," + fmt(s.t1) + ")");
      continue;
    }
    if (ov.rejected[uidx(s.job)]) {
      rep.fail("rejected job " + std::to_string(s.job) +
               " recorded a burst at t=" + fmt(s.t0));
      continue;
    }
    if (ov.shed(uidx(s.job)) && s.t1 > ov.shed_t[uidx(s.job)] + tol)
      rep.fail("shed job " + std::to_string(s.job) +
               " processed after its eviction at t=" +
               fmt(ov.shed_t[uidx(s.job)]) + ": burst [" + fmt(s.t0) + "," +
               fmt(s.t1) + ") on node " + std::to_string(s.node));
    const Job& job = instance.job(s.job);
    if (s.t0 < job.release - tol)
      rep.fail("job " + std::to_string(s.job) + " ran on node " +
               std::to_string(s.node) + " at " + fmt(s.t0) +
               " before its release " + fmt(job.release));
    // Effective rate: base speed times the slowdown factor in force. Bursts
    // never span a factor change, so the factor at t0 governs the burst.
    const double expect = log.speeds[uidx(s.node)] * factor_at(s.node, s.t0);
    if (std::fabs(s.rate - expect) > tol)
      rep.fail("segment rate " + fmt(s.rate) + " != speed x slowdown " +
               fmt(expect) + " of node " + std::to_string(s.node) + " at t=" +
               fmt(s.t0));
    if (s.t1 > s.t0 &&
        factor_at(s.node, s.t0) != factor_at(s.node, s.t1 - 1e-12) &&
        std::fabs(factor_at(s.node, s.t0) -
                  factor_at(s.node, s.t1 - 1e-12)) > tol)
      rep.fail("segment of job " + std::to_string(s.job) + " on node " +
               std::to_string(s.node) + " spans a slowdown change at [" +
               fmt(s.t0) + "," + fmt(s.t1) + ")");
    // Recovery invariant: nothing progresses at a dead node.
    for (const Window& w : down[uidx(s.node)]) {
      const Time lo = std::max(s.t0, w.lo);
      const Time hi = std::min(s.t1, w.hi);
      if (hi - lo > tol)
        rep.fail("job " + std::to_string(s.job) + " progressed at node " +
                 std::to_string(s.node) + " during its down window [" +
                 fmt(w.lo) + "," + fmt(w.hi) + "): burst [" + fmt(s.t0) + "," +
                 fmt(s.t1) + ")");
    }
    // Epoch-aware path membership.
    const auto& ep = epochs[uidx(s.job)];
    if (ep.empty()) continue;  // chain problem already reported
    std::size_t k = 0;
    while (k + 1 < ep.size() && ep[k + 1].start <= s.t0) ++k;
    const auto& path = *ep[k].path;
    int hop = -1;
    for (std::size_t i = 0; i < path.size(); ++i)
      if (path[i] == s.node) hop = static_cast<int>(i);
    if (hop < 0) {
      rep.fail("job " + std::to_string(s.job) + " ran on node " +
               std::to_string(s.node) + " at t=" + fmt(s.t0) +
               " which is not on its epoch-" + std::to_string(k) + " path");
      continue;
    }
    const bool leaf_hop = static_cast<std::size_t>(hop) + 1 == path.size();
    if (leaf_hop != (s.chunk == kLeafChunk)) {
      rep.fail("job " + std::to_string(s.job) + " recorded " +
               (s.chunk == kLeafChunk ? "machine" : "router") +
               " work on node " + std::to_string(s.node) +
               " which is a " + (leaf_hop ? "machine" : "router") +
               " hop of its epoch-" + std::to_string(k) + " path");
      continue;
    }
    if (s.chunk != kLeafChunk && s.chunk != 0) {
      rep.fail("job " + std::to_string(s.job) + " router chunk " +
               std::to_string(s.chunk) +
               " in a whole-job-forwarding fault run");
      continue;
    }
    node_work[{uidx(s.job), s.node}] += s.work();
    if (s.chunk == kLeafChunk) {
      if (k + 1 == ep.size()) {
        LeafAgg& agg = final_leaf_work[uidx(s.job)];
        agg.work += s.work();
        agg.first = std::min(agg.first, s.t0);
        agg.last = std::max(agg.last, s.t1);
      }
    } else {
      last_router_end[uidx(s.job)] =
          std::max(last_router_end[uidx(s.job)], s.t1);
    }
    by_node[uidx(s.node)].push_back(&s);
  }

  // --- unit capacity: per-node non-overlap ---------------------------------
  for (std::size_t v = 0; v < n_nodes; ++v) {
    auto& list = by_node[v];
    std::sort(list.begin(), list.end(),
              [](const Segment* a, const Segment* b) { return a->t0 < b->t0; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      const Segment* p = list[i - 1];
      const Segment* q = list[i];
      if (q->t0 < p->t1 - tol)
        rep.fail("unit capacity violated on node " + std::to_string(v) +
                 ": job " + std::to_string(p->job) + " [" + fmt(p->t0) + "," +
                 fmt(p->t1) + ") overlaps job " + std::to_string(q->job) +
                 " [" + fmt(q->t0) + "," + fmt(q->t1) + ")");
    }
  }

  // --- per-job recovery invariants -----------------------------------------
  for (std::size_t j = 0; j < n_jobs; ++j) {
    if (epochs[j].empty()) continue;
    ++rep.jobs_checked;
    const Job& job = instance.job(static_cast<JobId>(j));
    const auto& path = log.paths[j];
    const NodeId leaf = path.back();
    const double leaf_work = instance.processing_time(job.id, leaf);
    const Time claimed = log.completion[j];

    if (ov.shed(j)) {
      // An evicted job keeps its partial walk but must never finish; the
      // no-burst-after-eviction rule was enforced per segment above.
      if (claimed >= 0.0)
        rep.fail("shed job " + std::to_string(j) + " claims completion " +
                 fmt(claimed));
      continue;
    }
    if (claimed < 0.0) {
      rep.fail("job " + std::to_string(j) + " never completed");
      continue;
    }
    const LeafAgg& agg = final_leaf_work[j];
    if (agg.last < 0.0) {
      rep.fail("job " + std::to_string(j) +
               " has no machine work at its final leaf " +
               std::to_string(leaf) + " after the last re-dispatch");
      continue;
    }
    // The final attempt performs exactly the requirement: lost partial work
    // lives in earlier epochs (a crashed machine triggers re-dispatch), so
    // any shortfall or excess here means recovery dropped or double-counted
    // work.
    if (std::fabs(agg.work - leaf_work) > tol * std::max(1.0, leaf_work))
      rep.fail("job " + std::to_string(j) + " final-epoch machine work " +
               fmt(agg.work) + " != " + fmt(leaf_work) + " on node " +
               std::to_string(leaf));
    if (std::fabs(agg.last - claimed) > tol)
      rep.fail("job " + std::to_string(j) + " claimed completion " +
               fmt(claimed) + " != last machine burst end " + fmt(agg.last));
    // Every router of the final path fully forwarded the job at least once
    // (crash-reverted partials make the total larger, never smaller).
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const auto it = node_work.find({j, path[h]});
      const double w = it == node_work.end() ? 0.0 : it->second;
      if (w < job.size - tol * std::max(1.0, job.size))
        rep.fail("job " + std::to_string(j) + " completed but node " +
                 std::to_string(path[h]) + " of its final path forwarded " +
                 fmt(w) + " < " + fmt(job.size));
    }
    // Recovery precedence: all routing (every epoch) precedes the final
    // machine work.
    if (last_router_end[j] > agg.first + tol)
      rep.fail("precedence violated across recovery: job " +
               std::to_string(j) + " machine work started at " +
               fmt(agg.first) + " before its last router burst ended at " +
               fmt(last_router_end[j]));
  }

  rep.notes.push_back(
      "fault mode: " + std::to_string(log.faults.size()) +
      " fault record(s); priority consistency not audited (crashes "
      "legitimately reorder work)");
  if (ov.active)
    rep.notes.push_back(
        "fault mode: queue-cap and deadline admission checks skipped "
        "(re-dispatch replays hop-0 work without an admission decision)");
  if (opts.eps > 0.0)
    rep.notes.push_back(
        "fault mode: lemma margins not audited (the paper's bounds "
        "presuppose a fault-free network)");
  return rep;
}

}  // namespace

std::string AuditReport::summary() const {
  std::ostringstream os;
  if (ok) {
    os << "audit clean: " << jobs_checked << " job(s), " << segments_checked
       << " segment(s), all invariants hold";
  } else {
    os << violations.size() << " audit violation(s):\n";
    for (const auto& v : violations) os << "  - " << v << '\n';
  }
  for (const auto& n : notes) os << "\n  note: " << n;
  return os.str();
}

std::string AuditReport::lemma_table() const {
  if (lemma_rows.empty()) return {};
  util::Table t({"job", "size", "lemma2 max ratio", "@node", "interior wait",
                 "wait bound", "wait ratio"});
  auto cell = [](double v) {
    return v < 0.0 ? std::string("-") : util::Table::num(v);
  };
  for (const LemmaRow& r : lemma_rows) {
    t.add(r.job, util::Table::num(r.size), cell(r.lemma2_ratio),
          r.lemma2_node == kInvalidNode ? std::string("-")
                                        : std::to_string(r.lemma2_node),
          cell(r.interior_wait), cell(r.wait_bound), cell(r.wait_ratio));
  }
  std::ostringstream os;
  os << t.str();
  os << "worst lemma 2 ratio      : " << cell(lemma2_max_ratio) << '\n'
     << "worst interior-wait ratio: " << cell(wait_max_ratio) << '\n';
  return os.str();
}

AuditReport audit_run(const Instance& instance, const RunLog& log,
                      const AuditOptions& opts) {
  if (!log.faults.empty()) return audit_fault_run(instance, log, opts);
  AuditReport rep;
  const double tol = opts.tol;
  const Tree& tree = instance.tree();
  const std::size_t n_jobs = uidx(instance.job_count());
  const std::size_t n_nodes = uidx(tree.node_count());

  if (log.paths.size() != n_jobs || log.completion.size() != n_jobs) {
    rep.fail("run log covers " + std::to_string(log.paths.size()) +
             " job(s) but the instance has " + std::to_string(n_jobs));
    return rep;
  }
  if (log.speeds.size() != n_nodes) {
    rep.fail("run log has " + std::to_string(log.speeds.size()) +
             " speed(s) but the tree has " + std::to_string(n_nodes) +
             " node(s)");
    return rep;
  }
  const OverloadAudit ov = build_overload_audit(instance, log, rep);

  // --- per-job setup: path sanity, chunking, item aggregates ---------------
  std::vector<JobAudit> ja(n_jobs);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const Job& job = instance.job(static_cast<JobId>(j));
    const auto& path = log.paths[j];
    if (path.empty()) {
      if (!ov.rejected[j])
        rep.fail("job " + std::to_string(j) +
                 " has no recorded path (never dispatched)");
      continue;
    }
    bool path_ok = true;
    for (const NodeId v : path)
      if (v < 0 || uidx(v) >= n_nodes) {
        rep.fail("job " + std::to_string(j) + " path names unknown node " +
                 std::to_string(v));
        path_ok = false;
      }
    if (!path_ok) continue;
    if (!tree.is_leaf(path.back())) {
      rep.fail("job " + std::to_string(j) +
               " path does not end at a machine (node " +
               std::to_string(path.back()) + ")");
      continue;
    }
    JobAudit& a = ja[j];
    a.path = &path;
    if (log.router_chunk_size > 0.0)
      a.chunks = static_cast<std::int32_t>(
          std::max(1.0, std::ceil(job.size / log.router_chunk_size)));
    a.chunk_size = job.size / a.chunks;
    a.router.assign(path.size() - 1,
                    std::vector<ItemAgg>(uidx(a.chunks)));
  }

  // --- per-segment structural checks + aggregation -------------------------
  std::vector<std::vector<const Segment*>> by_node(n_nodes);
  // Bursts of job j on its hop h, for offline remaining-work reconstruction.
  std::map<std::pair<std::size_t, int>, std::vector<const Segment*>> by_item_node;
  for (const Segment& s : log.segments) {
    ++rep.segments_checked;
    if (s.job < 0 || uidx(s.job) >= n_jobs) {
      rep.fail("segment names unknown job " + std::to_string(s.job));
      continue;
    }
    if (s.node < 0 || uidx(s.node) >= n_nodes) {
      rep.fail("segment names unknown node " + std::to_string(s.node));
      continue;
    }
    if (s.t1 < s.t0 - tol) {
      rep.fail("segment of job " + std::to_string(s.job) + " on node " +
               std::to_string(s.node) + " has negative duration [" +
               fmt(s.t0) + "," + fmt(s.t1) + ")");
      continue;
    }
    if (std::fabs(s.rate - log.speeds[uidx(s.node)]) > tol)
      rep.fail("segment rate " + fmt(s.rate) + " != speed " +
               fmt(log.speeds[uidx(s.node)]) + " of node " +
               std::to_string(s.node));
    if (ov.rejected[uidx(s.job)]) {
      rep.fail("rejected job " + std::to_string(s.job) +
               " recorded a burst at t=" + fmt(s.t0));
      continue;
    }
    if (ov.shed(uidx(s.job)) && s.t1 > ov.shed_t[uidx(s.job)] + tol)
      rep.fail("shed job " + std::to_string(s.job) +
               " processed after its eviction at t=" +
               fmt(ov.shed_t[uidx(s.job)]) + ": burst [" + fmt(s.t0) + "," +
               fmt(s.t1) + ") on node " + std::to_string(s.node));
    JobAudit& a = ja[uidx(s.job)];
    if (!a.path) continue;  // path problem already reported
    const int hop = a.hop_of(s.node);
    const int last_hop = static_cast<int>(a.len()) - 1;
    if (hop < 0) {
      rep.fail("job " + std::to_string(s.job) + " ran on node " +
               std::to_string(s.node) +
               " which is not on its assigned path (immediate-dispatch "
               "violation)");
      continue;
    }
    const Job& job = instance.job(s.job);
    if (s.t0 < job.release - tol)
      rep.fail("job " + std::to_string(s.job) + " ran on node " +
               std::to_string(s.node) + " at " + fmt(s.t0) +
               " before its release " + fmt(job.release));
    ItemAgg* agg = nullptr;
    if (s.chunk == kLeafChunk) {
      if (hop != last_hop) {
        rep.fail("job " + std::to_string(s.job) +
                 " recorded machine work on interior node " +
                 std::to_string(s.node));
        continue;
      }
      agg = &a.leaf;
    } else {
      if (hop == last_hop) {
        rep.fail("job " + std::to_string(s.job) + " recorded router chunk " +
                 std::to_string(s.chunk) + " on its machine node " +
                 std::to_string(s.node));
        continue;
      }
      if (s.chunk < 0 || s.chunk >= a.chunks) {
        rep.fail("job " + std::to_string(s.job) + " chunk " +
                 std::to_string(s.chunk) + " out of range (job has " +
                 std::to_string(a.chunks) + ")");
        continue;
      }
      agg = &a.router[uidx(hop)][uidx(s.chunk)];
    }
    agg->work += s.work();
    agg->first = std::min(agg->first, s.t0);
    agg->last = std::max(agg->last, s.t1);
    by_node[uidx(s.node)].push_back(&s);
    by_item_node[{uidx(s.job), hop}].push_back(&s);
  }

  // --- unit capacity: per-node non-overlap ---------------------------------
  for (std::size_t v = 0; v < n_nodes; ++v) {
    auto& list = by_node[v];
    std::sort(list.begin(), list.end(),
              [](const Segment* a, const Segment* b) { return a->t0 < b->t0; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      const Segment* p = list[i - 1];
      const Segment* q = list[i];
      if (q->t0 < p->t1 - tol)
        rep.fail("unit capacity violated on node " + std::to_string(v) +
                 ": job " + std::to_string(p->job) + " [" + fmt(p->t0) + "," +
                 fmt(p->t1) + ") overlaps job " + std::to_string(q->job) +
                 " [" + fmt(q->t0) + "," + fmt(q->t1) + ")");
    }
  }

  // --- per-job: conservation, precedence, completion, availability ---------
  for (std::size_t j = 0; j < n_jobs; ++j) {
    JobAudit& a = ja[j];
    if (!a.path) continue;
    ++rep.jobs_checked;
    const Job& job = instance.job(static_cast<JobId>(j));
    const std::size_t len = a.len();
    const NodeId leaf = a.path->back();
    const double leaf_work = instance.processing_time(job.id, leaf);

    // Work conservation per item. A shed job is exempt: it keeps whatever
    // partial walk it made before eviction (the no-burst-after-eviction rule
    // is enforced per segment; precedence below still covers what did run).
    const bool was_shed = ov.shed(j);
    if (!was_shed) {
      for (std::size_t h = 0; h + 1 < len; ++h)
        for (std::int32_t c = 0; c < a.chunks; ++c) {
          const ItemAgg& agg = a.router[h][uidx(c)];
          if (!agg.ran()) {
            rep.fail("job " + std::to_string(j) + " chunk " +
                     std::to_string(c) + " never ran on node " +
                     std::to_string((*a.path)[h]));
          } else if (std::fabs(agg.work - a.chunk_size) >
                     tol * std::max(1.0, a.chunk_size)) {
            rep.fail("job " + std::to_string(j) + " chunk " +
                     std::to_string(c) + " on node " +
                     std::to_string((*a.path)[h]) + ": work " + fmt(agg.work) +
                     " != " + fmt(a.chunk_size));
          }
        }
      if (!a.leaf.ran()) {
        rep.fail("job " + std::to_string(j) + " never ran on its machine " +
                 std::to_string(leaf));
      } else if (std::fabs(a.leaf.work - leaf_work) >
                 tol * std::max(1.0, leaf_work)) {
        rep.fail("job " + std::to_string(j) + " machine work " +
                 fmt(a.leaf.work) + " != " + fmt(leaf_work));
      }
    }

    // Store-and-forward precedence, chunk by chunk down the path.
    for (std::size_t h = 1; h + 1 < len; ++h)
      for (std::int32_t c = 0; c < a.chunks; ++c) {
        const ItemAgg& up = a.router[h - 1][uidx(c)];
        const ItemAgg& down = a.router[h][uidx(c)];
        if (!up.ran() || !down.ran()) continue;  // reported above
        if (down.first < up.last - tol)
          rep.fail("precedence violated: job " + std::to_string(j) +
                   " chunk " + std::to_string(c) + " started on node " +
                   std::to_string((*a.path)[h]) + " at " + fmt(down.first) +
                   " before finishing on parent node " +
                   std::to_string((*a.path)[h - 1]) + " at " + fmt(up.last));
      }
    Time all_data_arrived = -1.0;
    for (std::int32_t c = 0; len >= 2 && c < a.chunks; ++c) {
      const ItemAgg& up = a.router[len - 2][uidx(c)];
      if (up.ran()) all_data_arrived = std::max(all_data_arrived, up.last);
    }
    if (a.leaf.ran() && a.leaf.first < all_data_arrived - tol)
      rep.fail("precedence violated: job " + std::to_string(j) +
               " machine work on node " + std::to_string(leaf) +
               " started at " + fmt(a.leaf.first) + " before data arrival " +
               fmt(all_data_arrived));

    // Claimed completion vs the log.
    const Time claimed = log.completion[j];
    if (was_shed) {
      if (claimed >= 0.0)
        rep.fail("shed job " + std::to_string(j) + " claims completion " +
                 fmt(claimed));
    } else if (claimed < 0.0) {
      rep.fail("job " + std::to_string(j) + " never completed");
    } else if (a.leaf.ran() && std::fabs(a.leaf.last - claimed) > tol) {
      rep.fail("job " + std::to_string(j) + " claimed completion " +
               fmt(claimed) + " != last machine burst end " + fmt(a.leaf.last));
    }

    // Availability windows (head-chunk rule + store-and-forward arrivals).
    a.avail.assign(len > 0 ? len - 1 : 0,
                   std::vector<Time>(uidx(a.chunks), -1.0));
    for (std::size_t h = 0; h + 1 < len; ++h)
      for (std::int32_t c = 0; c < a.chunks; ++c) {
        Time t = (h == 0) ? job.release : -1.0;
        if (h > 0) {
          const ItemAgg& up = a.router[h - 1][uidx(c)];
          if (!up.ran()) continue;  // unknown; dependent checks skip it
          t = up.last;
        }
        if (c > 0) {
          const ItemAgg& prev = a.router[h][uidx(c - 1)];
          if (!prev.ran()) continue;
          t = std::max(t, prev.last);
        }
        a.avail[h][uidx(c)] = t;
      }
    a.leaf_avail = (len == 1) ? job.release : all_data_arrived;
  }

  // --- overload admission control ------------------------------------------
  if (ov.active) {
    const overload::ShedConfig& sc = log.shed;
    rep.notes.push_back(std::string("overload mode: policy ") +
                        overload::shed_policy_name(sc.policy) + ", " +
                        std::to_string(log.sheds.size()) +
                        " admission record(s)");
    if (sc.policy == overload::ShedPolicy::kBoundedQueue ||
        sc.policy == overload::ShedPolicy::kLargestFirst) {
      // Cap safety: at every admission epoch the root-cut backlog —
      // reconstructed from the burst log exactly as the engine's
      // pending_remaining aggregates measure it — must respect the cap.
      // Hop 0 of every path is a root child, so a job's root-cut
      // contribution is its hop-0 requirement minus hop-0 work done.
      auto hop0_remaining_at = [&](std::size_t i, Time t) {
        const double required =
            ja[i].len() == 1
                ? instance.processing_time(static_cast<JobId>(i),
                                           ja[i].path->back())
                : instance.job(static_cast<JobId>(i)).size;
        util::CompensatedSum done;
        const auto it = by_item_node.find({i, 0});
        if (it != by_item_node.end())
          for (const Segment* s : it->second) {
            if (s->t1 <= t)
              done.add(s->work());
            else if (s->t0 < t)
              done.add((t - s->t0) * s->rate);
          }
        return std::max(required - done.value(), 0.0);
      };
      for (std::size_t j = 0; j < n_jobs; ++j) {
        if (!ja[j].path) continue;  // rejected: no admission epoch
        const Time r_j = instance.job(static_cast<JobId>(j)).release;
        util::CompensatedSum backlog;
        for (std::size_t i = 0; i < n_jobs; ++i) {
          if (!ja[i].path) continue;
          const Time r_i = instance.job(static_cast<JobId>(i)).release;
          if (r_i > r_j || (r_i == r_j && i > j)) continue;  // admitted later
          if (ov.shed(i) && ov.shed_t[i] <= r_j + tol) continue;  // evicted
          backlog.add(hop0_remaining_at(i, r_j));
        }
        if (backlog.value() > sc.queue_cap + tol * std::max(1.0, sc.queue_cap))
          rep.fail("queue cap exceeded at admission of job " +
                   std::to_string(j) + " (t=" + fmt(r_j) +
                   "): reconstructed root-cut backlog " + fmt(backlog.value()) +
                   " > cap " + fmt(sc.queue_cap));
      }
    }
    if (sc.policy == overload::ShedPolicy::kDeadline) {
      // Every admission decision must carry the recorded Lemma-4 estimate,
      // and the recorded estimate must actually justify the decision against
      // bound = slack x p_j.
      for (std::size_t j = 0; j < n_jobs; ++j) {
        const double want =
            sc.deadline_slack * instance.job(static_cast<JobId>(j)).size;
        const double dtol = tol * std::max(1.0, want);
        if (ja[j].path) {
          if (!ov.has_admitf[j]) {
            rep.fail("deadline policy admitted job " + std::to_string(j) +
                     " without a recorded F bound (admitf line)");
            continue;
          }
          if (std::fabs(ov.admit_bound[j] - want) > dtol)
            rep.fail("job " + std::to_string(j) + " admitf bound " +
                     fmt(ov.admit_bound[j]) + " != slack x size " + fmt(want));
          if (ov.admit_f[j] > ov.admit_bound[j] + dtol)
            rep.fail("deadline policy admitted job " + std::to_string(j) +
                     " with estimated completion F " + fmt(ov.admit_f[j]) +
                     " > bound " + fmt(ov.admit_bound[j]));
        } else if (ov.rejected[j]) {
          if (std::fabs(ov.reject_bound[j] - want) > dtol)
            rep.fail("job " + std::to_string(j) + " reject bound " +
                     fmt(ov.reject_bound[j]) + " != slack x size " + fmt(want));
          if (ov.reject_f[j] <= ov.reject_bound[j] - dtol)
            rep.fail("deadline policy rejected job " + std::to_string(j) +
                     " whose estimated completion F " + fmt(ov.reject_f[j]) +
                     " met the bound " + fmt(ov.reject_bound[j]));
        }
      }
    }
  }

  // --- priority consistency ------------------------------------------------
  if (log.node_policy == NodePolicy::kSrpt) {
    rep.notes.push_back(
        "priority consistency not audited for SRPT (keys depend on "
        "instantaneous remaining work)");
  } else {
    // All items per node with their key and availability window.
    struct NodeItem {
      PriorityKey key;
      Time avail = -1.0;
      Time finish = -1.0;
    };
    std::vector<std::vector<NodeItem>> items(n_nodes);
    auto make_key = [&](std::size_t j, NodeId v, std::int32_t chunk,
                        Time avail) {
      PriorityKey k;
      k.job = static_cast<JobId>(j);
      k.chunk = chunk;
      const Job& job = instance.job(k.job);
      switch (log.node_policy) {
        case NodePolicy::kSjf:
          k.a = instance.processing_time(k.job, v);
          k.b = job.release;
          break;
        case NodePolicy::kFifo:
          k.a = avail;
          break;
        case NodePolicy::kLcfs:
          k.a = -avail;
          break;
        case NodePolicy::kHdf:
          k.a = instance.processing_time(k.job, v) / job.weight;
          k.b = job.release;
          break;
        case NodePolicy::kSrpt:
          break;  // unreachable
      }
      return k;
    };
    for (std::size_t j = 0; j < n_jobs; ++j) {
      const JobAudit& a = ja[j];
      if (!a.path) continue;
      const std::size_t len = a.len();
      for (std::size_t h = 0; h + 1 < len; ++h)
        for (std::int32_t c = 0; c < a.chunks; ++c) {
          const ItemAgg& agg = a.router[h][uidx(c)];
          const Time avail = a.avail[h][uidx(c)];
          if (!agg.ran() || avail < 0.0) continue;
          items[uidx((*a.path)[h])].push_back(
              {make_key(j, (*a.path)[h], c, avail), avail, agg.last});
        }
      if (a.leaf.ran() && a.leaf_avail >= 0.0)
        items[uidx(a.path->back())].push_back(
            {make_key(j, a.path->back(), kLeafChunk, a.leaf_avail),
             a.leaf_avail, a.leaf.last});
    }
    const char* policy = node_policy_name(log.node_policy);
    std::set<std::tuple<JobId, std::int32_t, JobId, std::int32_t, NodeId>>
        reported;
    for (std::size_t v = 0; v < n_nodes; ++v) {
      if (items[v].empty()) continue;
      for (const Segment* s : by_node[v]) {
        // Identify the running item's key.
        const NodeItem* running = nullptr;
        for (const NodeItem& it : items[v])
          if (it.key.job == s->job && it.key.chunk == s->chunk) running = &it;
        if (!running) continue;  // structurally bad segment, reported above
        for (const NodeItem& other : items[v]) {
          if (other.key.job == s->job) continue;
          if (!higher_priority(other.key, running->key)) continue;
          const Time lo = std::max(s->t0, other.avail);
          const Time hi = std::min(s->t1, other.finish);
          if (hi - lo <= tol) continue;
          if (!reported
                   .insert({s->job, s->chunk, other.key.job, other.key.chunk,
                            static_cast<NodeId>(v)})
                   .second)
            continue;
          rep.fail(std::string(policy) + " priority violated on node " +
                   std::to_string(v) + ": ran job " + std::to_string(s->job) +
                   " (key " + fmt(running->key.a) + ") during [" + fmt(lo) +
                   "," + fmt(hi) + ") while job " +
                   std::to_string(other.key.job) + " (key " +
                   fmt(other.key.a) + ", available since " + fmt(other.avail) +
                   ") waited");
        }
      }
    }
  }

  // --- lemma margins (optional) --------------------------------------------
  if (opts.eps > 0.0) {
    const double eps = opts.eps;
    const bool leaf_identical = instance.model() == EndpointModel::kIdentical;

    // remaining work of job i on its hop h at time t, from the burst log.
    auto remaining_at = [&](std::size_t i, int h, double required, Time t) {
      util::CompensatedSum done;
      auto it = by_item_node.find({i, h});
      if (it != by_item_node.end())
        for (const Segment* s : it->second) {
          if (s->t1 <= t)
            done.add(s->work());
          else if (s->t0 < t)
            done.add((t - s->t0) * s->rate);
        }
      return std::max(required - done.value(), 0.0);
    };
    // Is some work item of job i available on its hop h at time t?
    auto available_at = [&](const JobAudit& a, std::size_t h, Time t) {
      const std::size_t len = a.len();
      if (h + 1 == len)
        return a.leaf_avail >= 0.0 && a.leaf_avail <= t + 1e-12 &&
               a.leaf.ran() && a.leaf.last > t + 1e-12;
      for (std::int32_t c = 0; c < a.chunks; ++c) {
        const Time av = a.avail[h][uidx(c)];
        const ItemAgg& agg = a.router[h][uidx(c)];
        if (av >= 0.0 && av <= t + 1e-12 && agg.ran() && agg.last > t + 1e-12)
          return true;
      }
      return false;
    };

    for (std::size_t j = 0; j < n_jobs; ++j) {
      const JobAudit& a = ja[j];
      if (!a.path) continue;
      if (ov.shed(j)) continue;  // partial walk: margins are undefined
      const Job& job = instance.job(static_cast<JobId>(j));
      LemmaRow row;
      row.job = job.id;
      row.size = job.size;
      const std::size_t len = a.len();

      // Lemma 2: at j's arrival on each eligible interior node v, the
      // available volume with priority >= j's is at most (2/eps) p_j.
      for (std::size_t h = 0; h < len; ++h) {
        const NodeId v = (*a.path)[h];
        if (tree.is_root(v) || tree.parent(v) == tree.root()) continue;
        if (tree.is_leaf(v) && !leaf_identical) continue;
        Time t;
        if (h + 1 == len) {
          t = a.leaf_avail;
        } else {
          t = a.avail[h].empty() ? -1.0 : a.avail[h][0];
        }
        if (t < 0.0) continue;
        const double p_j = instance.processing_time(job.id, v);
        const Time r_j = job.release;
        util::CompensatedSum vol;
        for (std::size_t i = 0; i < n_jobs; ++i) {
          const JobAudit& ai = ja[i];
          if (!ai.path) continue;
          const int hi = ai.hop_of(v);
          if (hi < 0) continue;
          if (i != j && !available_at(ai, uidx(hi), t)) continue;
          const double p_i = instance.processing_time(static_cast<JobId>(i), v);
          const Time r_i = instance.job(static_cast<JobId>(i)).release;
          const bool in_s =
              (i == j) || p_i < p_j ||
              (p_i == p_j && (r_i < r_j || (r_i == r_j && i < j)));
          if (!in_s) continue;
          const double required =
              (uidx(hi) + 1 == ai.len())
                  ? instance.processing_time(static_cast<JobId>(i),
                                             ai.path->back())
                  : instance.job(static_cast<JobId>(i)).size;
          vol.add(remaining_at(i, hi, required, t));
        }
        const double bound = 2.0 / eps * p_j;
        const double ratio = vol.value() / bound;
        if (ratio > row.lemma2_ratio) {
          row.lemma2_ratio = ratio;
          row.lemma2_node = v;
        }
      }
      if (row.lemma2_ratio >= 0.0)
        rep.lemma2_max_ratio = std::max(rep.lemma2_max_ratio, row.lemma2_ratio);

      // Lemma 1/3: interior wait after leaving R(v)'s node is at most
      // (6/eps^2) p_j d_v over the identical portion of the path.
      const int last_idx =
          static_cast<int>(len) - (leaf_identical ? 1 : 2);
      if (last_idx >= 1) {
        Time left_first = -1.0;
        for (std::int32_t c = 0; c < a.chunks; ++c)
          if (a.router[0][uidx(c)].ran())
            left_first = std::max(left_first, a.router[0][uidx(c)].last);
        Time cleared = -1.0;
        if (uidx(last_idx) + 1 == len) {
          cleared = a.leaf.ran() ? a.leaf.last : -1.0;
        } else {
          for (std::int32_t c = 0; c < a.chunks; ++c)
            if (a.router[uidx(last_idx)][uidx(c)].ran())
              cleared =
                  std::max(cleared, a.router[uidx(last_idx)][uidx(c)].last);
        }
        if (left_first >= 0.0 && cleared >= 0.0) {
          const NodeId v_e = (*a.path)[uidx(last_idx)];
          row.interior_wait = cleared - left_first;
          row.wait_bound = 6.0 / (eps * eps) * job.size * tree.d(v_e);
          row.wait_ratio = row.interior_wait / row.wait_bound;
          rep.wait_max_ratio = std::max(rep.wait_max_ratio, row.wait_ratio);
          if (opts.strict_lemmas && row.wait_ratio > 1.0 + 1e-9)
            rep.fail("interior-wait bound violated for job " +
                     std::to_string(j) + ": wait " + fmt(row.interior_wait) +
                     " > bound " + fmt(row.wait_bound));
        }
      }
      if (opts.strict_lemmas && row.lemma2_ratio > 1.0 + 1e-9)
        rep.fail("lemma 2 volume bound violated for job " + std::to_string(j) +
                 " on node " + std::to_string(row.lemma2_node) + ": ratio " +
                 fmt(row.lemma2_ratio));
      rep.lemma_rows.push_back(row);
    }
  }

  return rep;
}

}  // namespace treesched::sim
