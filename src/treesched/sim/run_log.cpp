#include "treesched/sim/run_log.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "treesched/util/fs.hpp"
#include "treesched/util/string_util.hpp"

namespace treesched::sim {

namespace {

const char* policy_token(NodePolicy p) {
  switch (p) {
    case NodePolicy::kSjf: return "sjf";
    case NodePolicy::kFifo: return "fifo";
    case NodePolicy::kSrpt: return "srpt";
    case NodePolicy::kLcfs: return "lcfs";
    case NodePolicy::kHdf: return "hdf";
  }
  return "?";
}

NodePolicy parse_policy(const std::string& s) {
  if (s == "sjf") return NodePolicy::kSjf;
  if (s == "fifo") return NodePolicy::kFifo;
  if (s == "srpt") return NodePolicy::kSrpt;
  if (s == "lcfs") return NodePolicy::kLcfs;
  if (s == "hdf") return NodePolicy::kHdf;
  throw std::invalid_argument("runlog: unknown node policy '" + s + "'");
}

[[noreturn]] void bad(const std::string& msg) {
  throw std::invalid_argument("runlog: " + msg);
}

const char* fault_token(FaultRecord::Kind k) {
  switch (k) {
    case FaultRecord::Kind::kNodeDown: return "node-down";
    case FaultRecord::Kind::kNodeUp: return "node-up";
    case FaultRecord::Kind::kEdgeDown: return "edge-down";
    case FaultRecord::Kind::kEdgeUp: return "edge-up";
    case FaultRecord::Kind::kSlow: return "slow";
    case FaultRecord::Kind::kRedispatch: return "redispatch";
  }
  return "?";
}

FaultRecord::Kind parse_fault_token(const std::string& s) {
  if (s == "node-down") return FaultRecord::Kind::kNodeDown;
  if (s == "node-up") return FaultRecord::Kind::kNodeUp;
  if (s == "edge-down") return FaultRecord::Kind::kEdgeDown;
  if (s == "edge-up") return FaultRecord::Kind::kEdgeUp;
  if (s == "slow") return FaultRecord::Kind::kSlow;
  throw std::invalid_argument("runlog: unknown fault kind '" + s + "'");
}

}  // namespace

RunLog make_run_log(const Instance& instance, const SpeedProfile& speeds,
                    const EngineConfig& cfg, const ScheduleRecorder& recorder,
                    const Metrics& metrics) {
  std::vector<std::vector<NodeId>> paths(uidx(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    const NodeId leaf = metrics.job(job.id).leaf;
    if (leaf != kInvalidNode) {
      const auto& p = instance.tree().path_to(leaf);
      paths[uidx(job.id)].assign(p.begin(), p.end());
    }
  }
  return make_run_log(instance, speeds, cfg, recorder, metrics, paths);
}

RunLog make_run_log(const Instance& instance, const SpeedProfile& speeds,
                    const EngineConfig& cfg, const ScheduleRecorder& recorder,
                    const Metrics& metrics,
                    const std::vector<std::vector<NodeId>>& paths) {
  RunLog log;
  log.node_policy = cfg.node_policy;
  log.router_chunk_size = cfg.router_chunk_size;
  log.shed = cfg.shed;
  log.speeds = speeds.speeds();
  log.paths = paths;
  log.completion.assign(uidx(instance.job_count()), -1.0);
  for (const Job& job : instance.jobs())
    log.completion[uidx(job.id)] = metrics.job(job.id).completion;
  log.segments = recorder.segments();
  return log;
}

RunLog make_run_log(const Instance& instance, const Engine& engine) {
  RunLog log = make_run_log(instance, engine.speeds(), engine.config(),
                            engine.recorder(), engine.metrics());
  log.faults = engine.fault_log();
  log.sheds = engine.shed_log();
  return log;
}

void write_run_log(std::ostream& os, const RunLog& log) {
  os << std::setprecision(17);
  os << "runlog 1\n";
  os << "policy " << policy_token(log.node_policy) << '\n';
  os << "chunk " << log.router_chunk_size << '\n';
  os << "speeds " << log.speeds.size();
  for (double s : log.speeds) os << ' ' << s;
  os << '\n';
  for (std::size_t j = 0; j < log.paths.size(); ++j) {
    os << "job " << j << ' ' << log.completion[j] << ' '
       << log.paths[j].size();
    for (NodeId v : log.paths[j]) os << ' ' << v;
    os << '\n';
  }
  for (const Segment& s : log.segments)
    os << "seg " << s.node << ' ' << s.job << ' ' << s.chunk << ' ' << s.t0
       << ' ' << s.t1 << ' ' << s.rate << '\n';
  for (const FaultRecord& fr : log.faults) {
    if (fr.kind == FaultRecord::Kind::kRedispatch)
      os << "redispatch " << fr.t << ' ' << fr.job << ' ' << fr.node << ' '
         << fr.to << '\n';
    else
      os << "fevent " << fault_token(fr.kind) << ' ' << fr.t << ' ' << fr.node
         << ' ' << fr.factor << '\n';
  }
  // Emitted only for overload-protected runs: a shed-policy-none log stays
  // byte-identical to the pre-overload format.
  if (log.shed.enabled() || !log.sheds.empty()) {
    os << "shedcfg " << overload::shed_policy_name(log.shed.policy) << ' '
       << log.shed.queue_cap << ' ' << log.shed.deadline_slack << '\n';
    for (const ShedRecord& sr : log.sheds) {
      switch (sr.kind) {
        case ShedRecord::Kind::kShed:
          os << "shed " << sr.t << ' ' << sr.job << '\n';
          break;
        case ShedRecord::Kind::kReject:
          os << "reject " << sr.t << ' ' << sr.job << ' ' << sr.f << ' '
             << sr.bound << '\n';
          break;
        case ShedRecord::Kind::kAdmit:
          os << "admitf " << sr.t << ' ' << sr.job << ' ' << sr.f << ' '
             << sr.bound << '\n';
          break;
      }
    }
  }
}

void write_run_log_file(const std::string& path, const RunLog& log) {
  std::ostringstream os;
  write_run_log(os, log);
  util::write_file_atomic(path, os.str());
}

RunLog read_run_log(std::istream& is) {
  RunLog log;
  bool header_seen = false;
  std::string line;
  while (std::getline(is, line)) {
    line = util::trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "runlog") {
      int version = 0;
      if (!(ls >> version) || version != 1) bad("unsupported version");
      header_seen = true;
    } else if (!header_seen) {
      bad("missing 'runlog 1' header");
    } else if (tag == "policy") {
      std::string p;
      if (!(ls >> p)) bad("bad policy line");
      log.node_policy = parse_policy(p);
    } else if (tag == "chunk") {
      if (!(ls >> log.router_chunk_size) || log.router_chunk_size < 0.0)
        bad("bad chunk line");
    } else if (tag == "speeds") {
      std::size_t n = 0;
      if (!(ls >> n)) bad("bad speeds line");
      log.speeds.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        if (!(ls >> log.speeds[i])) bad("speeds line truncated");
    } else if (tag == "job") {
      std::size_t id = 0, len = 0;
      Time completion = -1.0;
      if (!(ls >> id >> completion >> len)) bad("bad job line: " + line);
      if (id >= 1000000) bad("job id out of range");
      if (log.paths.size() <= id) {
        log.paths.resize(id + 1);
        log.completion.resize(id + 1, -1.0);
      }
      log.completion[id] = completion;
      log.paths[id].resize(len);
      for (std::size_t i = 0; i < len; ++i)
        if (!(ls >> log.paths[id][i])) bad("job path truncated: " + line);
    } else if (tag == "seg") {
      Segment s;
      if (!(ls >> s.node >> s.job >> s.chunk >> s.t0 >> s.t1 >> s.rate))
        bad("bad seg line: " + line);
      log.segments.push_back(s);
    } else if (tag == "fevent") {
      std::string tok;
      FaultRecord fr;
      if (!(ls >> tok >> fr.t >> fr.node >> fr.factor))
        bad("bad fevent line: " + line);
      fr.kind = parse_fault_token(tok);
      log.faults.push_back(fr);
    } else if (tag == "redispatch") {
      FaultRecord fr;
      fr.kind = FaultRecord::Kind::kRedispatch;
      if (!(ls >> fr.t >> fr.job >> fr.node >> fr.to))
        bad("bad redispatch line: " + line);
      log.faults.push_back(fr);
    } else if (tag == "shedcfg") {
      std::string p;
      if (!(ls >> p >> log.shed.queue_cap >> log.shed.deadline_slack))
        bad("bad shedcfg line: " + line);
      try {
        log.shed.policy = overload::parse_shed_policy(p);
      } catch (const std::invalid_argument&) {
        bad("unknown shed policy '" + p + "'");
      }
    } else if (tag == "shed") {
      ShedRecord sr;
      sr.kind = ShedRecord::Kind::kShed;
      if (!(ls >> sr.t >> sr.job)) bad("bad shed line: " + line);
      log.sheds.push_back(sr);
    } else if (tag == "reject") {
      ShedRecord sr;
      sr.kind = ShedRecord::Kind::kReject;
      if (!(ls >> sr.t >> sr.job >> sr.f >> sr.bound))
        bad("bad reject line: " + line);
      log.sheds.push_back(sr);
    } else if (tag == "admitf") {
      ShedRecord sr;
      sr.kind = ShedRecord::Kind::kAdmit;
      if (!(ls >> sr.t >> sr.job >> sr.f >> sr.bound))
        bad("bad admitf line: " + line);
      log.sheds.push_back(sr);
    } else {
      bad("unknown tag '" + tag + "'");
    }
  }
  if (!header_seen) bad("missing 'runlog 1' header");
  return log;
}

RunLog read_run_log_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open run log: " + path);
  return read_run_log(f);
}

namespace {

// Shared naming helper: inserts `tag` before the final extension of `base`
// (appends when there is none). Both per-task and per-segment names go
// through here so the two compose predictably.
std::string tagged_log_path(const std::string& base, const std::string& tag) {
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of('/');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  if (!has_ext) return base + tag;
  return base.substr(0, dot) + tag + base.substr(dot);
}

}  // namespace

std::string task_log_path(const std::string& base, std::size_t task_index) {
  std::ostringstream tag;
  tag << ".task" << std::setw(6) << std::setfill('0') << task_index;
  return tagged_log_path(base, tag.str());
}

std::string segment_log_path(const std::string& base, std::size_t index) {
  std::ostringstream tag;
  tag << ".seg" << std::setw(6) << std::setfill('0') << index;
  return tagged_log_path(base, tag.str());
}

}  // namespace treesched::sim
