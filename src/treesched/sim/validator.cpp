#include "treesched/sim/validator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

#include "treesched/util/float_compare.hpp"

namespace treesched::sim {

namespace {
constexpr double kTol = 1e-6;

std::string fmt(double x) {
  std::ostringstream os;
  os << x;
  return os.str();
}
}  // namespace

std::string ValidationResult::summary() const {
  if (ok) return "schedule valid";
  std::ostringstream os;
  os << errors.size() << " validation error(s):\n";
  for (const auto& e : errors) os << "  - " << e << '\n';
  return os.str();
}

ValidationResult validate_schedule(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   const EngineConfig& cfg,
                                   const ScheduleRecorder& recorder,
                                   const Metrics& metrics) {
  std::vector<std::vector<NodeId>> paths(uidx(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    const NodeId leaf = metrics.job(job.id).leaf;
    if (leaf != kInvalidNode) {
      const auto& p = instance.tree().path_to(leaf);
      paths[uidx(job.id)].assign(p.begin(), p.end());
    }
  }
  return validate_schedule(instance, speeds, cfg, recorder, metrics, paths);
}

ValidationResult validate_schedule(
    const Instance& instance, const SpeedProfile& speeds,
    const EngineConfig& cfg, const ScheduleRecorder& recorder,
    const Metrics& metrics, const std::vector<std::vector<NodeId>>& paths) {
  ValidationResult res;
  const auto& segs = recorder.segments();

  // --- 1 & 2: per-node non-overlap and correct rate ---
  std::map<NodeId, std::vector<const Segment*>> by_node;
  for (const Segment& s : segs) {
    if (s.t1 < s.t0 - kTol)
      res.fail("segment with negative duration on node " +
               std::to_string(s.node));
    if (std::fabs(s.rate - speeds.speed(s.node)) > kTol)
      res.fail("segment rate " + fmt(s.rate) + " != speed of node " +
               std::to_string(s.node));
    by_node[s.node].push_back(&s);
  }
  for (auto& [node, list] : by_node) {
    std::sort(list.begin(), list.end(), [](const Segment* a, const Segment* b) {
      return a->t0 < b->t0;
    });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i]->t0 < list[i - 1]->t1 - kTol) {
        res.fail("node " + std::to_string(node) + " overlaps: job " +
                 std::to_string(list[i - 1]->job) + " [" +
                 fmt(list[i - 1]->t0) + "," + fmt(list[i - 1]->t1) +
                 ") and job " + std::to_string(list[i]->job) + " [" +
                 fmt(list[i]->t0) + "," + fmt(list[i]->t1) + ")");
      }
    }
  }

  // --- per (job, node, chunk) aggregates ---
  struct ChunkAgg {
    double work = 0.0;
    Time first_start = std::numeric_limits<double>::infinity();
    Time last_end = -1.0;
  };
  std::map<std::tuple<JobId, NodeId, std::int32_t>, ChunkAgg> agg;
  for (const Segment& s : segs) {
    ChunkAgg& a = agg[{s.job, s.node, s.chunk}];
    a.work += s.work();
    a.first_start = std::min(a.first_start, s.t0);
    a.last_end = std::max(a.last_end, s.t1);
  }

  for (const Job& job : instance.jobs()) {
    const JobRecord& rec = metrics.job(job.id);
    if (!rec.completed()) {
      res.fail("job " + std::to_string(job.id) + " never completed");
      continue;
    }
    const NodeId leaf = rec.leaf;
    const std::vector<NodeId>& path = paths[uidx(job.id)];
    if (path.empty() || path.back() != leaf) {
      res.fail("job " + std::to_string(job.id) +
               ": supplied path does not end at the recorded machine");
      continue;
    }
    const std::size_t len = path.size();

    std::int32_t chunks = 1;
    if (cfg.router_chunk_size > 0.0)
      chunks = static_cast<std::int32_t>(
          std::max(1.0, std::ceil(job.size / cfg.router_chunk_size)));
    const double chunk_size = job.size / chunks;

    // --- 3: work conservation, 5: release respected ---
    for (std::size_t i = 0; i + 1 < len; ++i) {
      for (std::int32_t c = 0; c < chunks; ++c) {
        auto it = agg.find({job.id, path[i], c});
        if (it == agg.end()) {
          res.fail("job " + std::to_string(job.id) + " chunk " +
                   std::to_string(c) + " never ran on node " +
                   std::to_string(path[i]));
          continue;
        }
        const ChunkAgg& a = it->second;
        if (std::fabs(a.work - chunk_size) > kTol * std::max(1.0, chunk_size))
          res.fail("job " + std::to_string(job.id) + " chunk " +
                   std::to_string(c) + " on node " + std::to_string(path[i]) +
                   ": work " + fmt(a.work) + " != " + fmt(chunk_size));
        if (a.first_start < job.release - kTol)
          res.fail("job " + std::to_string(job.id) + " ran before release");
      }
    }
    const double leaf_work = instance.processing_time(job.id, leaf);
    auto leaf_it = agg.find({job.id, leaf, kLeafChunk});
    if (leaf_it == agg.end()) {
      res.fail("job " + std::to_string(job.id) + " never ran on its leaf");
      continue;
    }
    if (std::fabs(leaf_it->second.work - leaf_work) >
        kTol * std::max(1.0, leaf_work))
      res.fail("job " + std::to_string(job.id) + " leaf work " +
               fmt(leaf_it->second.work) + " != " + fmt(leaf_work));

    // --- 4: precedence chunk by chunk down the path ---
    for (std::size_t i = 1; i + 1 < len; ++i) {
      for (std::int32_t c = 0; c < chunks; ++c) {
        auto up = agg.find({job.id, path[i - 1], c});
        auto down = agg.find({job.id, path[i], c});
        if (up == agg.end() || down == agg.end()) continue;  // reported above
        if (down->second.first_start < up->second.last_end - kTol)
          res.fail("job " + std::to_string(job.id) + " chunk " +
                   std::to_string(c) + " started on node " +
                   std::to_string(path[i]) + " at " +
                   fmt(down->second.first_start) + " before parent finish " +
                   fmt(up->second.last_end));
      }
    }
    // Leaf work must wait for every chunk on the last router (paths of
    // length 1 — a machine-born job — have no routing leg).
    Time all_data_arrived = -1.0;
    for (std::int32_t c = 0; len >= 2 && c < chunks; ++c) {
      auto up = agg.find({job.id, path[len - 2], c});
      if (up != agg.end())
        all_data_arrived = std::max(all_data_arrived, up->second.last_end);
    }
    if (leaf_it->second.first_start < all_data_arrived - kTol)
      res.fail("job " + std::to_string(job.id) + " leaf work on node " +
               std::to_string(leaf) + " started at " +
               fmt(leaf_it->second.first_start) + " before data arrival " +
               fmt(all_data_arrived));

    // --- 6: claimed completion matches the log ---
    if (std::fabs(leaf_it->second.last_end - rec.completion) > kTol)
      res.fail("job " + std::to_string(job.id) + " metrics completion " +
               fmt(rec.completion) + " != log " +
               fmt(leaf_it->second.last_end));
  }

  return res;
}

}  // namespace treesched::sim
