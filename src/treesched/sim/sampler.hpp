// Time-series sampling of engine state, for burst visualization and
// load-dynamics experiments.
#pragma once

#include <string>
#include <vector>

#include "treesched/sim/engine.hpp"

namespace treesched::sim {

/// Samples aggregate queue state at engine events, rate-limited to at most
/// one sample per `min_gap` of simulated time.
class QueueSampler : public EngineObserver {
 public:
  explicit QueueSampler(double min_gap = 1.0) : min_gap_(min_gap) {}

  void on_event(const Engine& engine, Time t) override {
    if (!samples_.empty() && t - samples_.back().t < min_gap_) return;
    Sample s;
    s.t = t;
    const Tree& tree = engine.tree();
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      if (tree.is_root(v)) continue;
      s.queued_jobs += engine.queue_size(v);
    }
    for (const NodeId rc : tree.root_children()) {
      s.alive_jobs += engine.queue_size(rc);
      s.backlog += engine.pending_remaining(rc);
    }
    s.shed_decisions = engine.shed_log().size();
    samples_.push_back(s);
  }

  struct Sample {
    Time t = 0.0;
    std::size_t queued_jobs = 0;  ///< sum of |Q_v| over processing nodes
    std::size_t alive_jobs = 0;   ///< jobs not yet past their root child
    double backlog = 0.0;         ///< root-cut volume (saturation timeline)
    /// Cumulative admission-control decisions so far (shed/reject/admitf) —
    /// 0 throughout non-overload runs.
    std::size_t shed_decisions = 0;
  };

  const std::vector<Sample>& samples() const { return samples_; }

  /// The queued-jobs series (for sparklines / CSV).
  std::vector<double> queued_series() const {
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_)
      out.push_back(static_cast<double>(s.queued_jobs));
    return out;
  }

  /// The root-cut backlog series — the saturation timeline of a degraded
  /// run (flat under shedding, divergent without it at rho > 1).
  std::vector<double> backlog_series() const {
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.backlog);
    return out;
  }

 private:
  double min_gap_;
  std::vector<Sample> samples_;
};

/// Renders a series as a one-line unicode-free sparkline using ' .:-=+*#%@'
/// levels, downsampled to `width` columns by taking column maxima.
std::string ascii_sparkline(const std::vector<double>& series,
                            std::size_t width = 80);

}  // namespace treesched::sim
