// Segmented, rotating run logs for streaming endurance runs
// (treesched-runlog-seg-v1).
//
// A monolithic run log holds every burst of the whole run in one file —
// useless for 10^8-job streams. The segmented format splits the event
// stream into size-bounded segment files, each independently fingerprinted
// (FNV-1a 64 over the file bytes) and chained into a manifest, so
// treesched_audit can verify the run segment-by-segment in O(segment)
// memory and any post-hoc tampering (edit, drop, reorder) breaks the chain.
//
// Manifest (`base` path; line-oriented, full double precision):
//   runlogseg 1
//   policy <sjf|fifo|srpt|lcfs|hdf>
//   chunk <router_chunk_size>            (streaming mode always writes 0)
//   speeds <node_count> <s_0> ...
//   shedcfg <policy> <cap> <slack>       (only when shedding is enabled)
//   node <id> <parent|-1> <r|i|m>        (embedded topology, one per node)
//   segment <idx> <payload_lines> <fp> <chain>
//   ...
//   final <arrivals> <completed> <shed> <rejected> <total_flow> <makespan>
//
// Segment file (segment_log_path(base, idx)):
//   runlogseg-part 1 <idx>
//   jobrec <job> <release> <weight> <size> <leaf>
//   seg <node> <job> <chunk> <t0> <t1> <rate>
//   done <job> <t>
//   shed <t> <job>
//   reject <t> <job>
//   end <idx> <payload_lines>
//
// Canonical payload order: stable sort by (time key, kind rank) where the
// time key is the instant the event became final (jobrec: release; seg: t1,
// its recording instant; done/shed/reject: t) and the rank orders
// same-instant events jobrec < seg < done < shed/reject. Both components
// are monotone over the writer's feed, so the order — and therefore every
// segment byte and fingerprint — is independent of when the driver drained
// the engine's recorder, which is what makes the kill/resume differential
// byte-comparable.
//
// Chain rule: chain_i = fnv1a(decimal(chain_{i-1}) + ":" + decimal(fp_i)),
// chain_{-1} = the FNV offset basis. Segment files are written atomically;
// the manifest is append+flush per segment, so a crash can tear at most its
// final line — readers tolerate (ignore) a torn tail, mirroring the PR 3
// sweep journal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "treesched/core/tree.hpp"
#include "treesched/overload/config.hpp"
#include "treesched/sim/priority.hpp"
#include "treesched/sim/recorder.hpp"

namespace treesched::sim {

/// Streaming writer. Feed events in engine order (global job ids — window
/// bases already applied by the driver); call commit() at safe points
/// (after a full recorder drain) to close segments; finish with
/// write_final(). All file writes go through util/fs atomics or
/// append+flush as documented above.
class SegmentedRunLogWriter {
 public:
  struct Config {
    std::string base_path;        ///< manifest path; segments derive from it
    std::size_t segment_cap = 4096;  ///< payload lines that trigger closing
  };

  /// Captures the run parameters; does NOT touch the filesystem. Call
  /// exactly one of start_fresh() / resume() before feeding any event.
  SegmentedRunLogWriter(Config cfg, const Tree& tree,
                        const std::vector<double>& speeds, NodePolicy policy,
                        double router_chunk_size,
                        const overload::ShedConfig& shed);

  /// Fresh start: writes a new manifest header (atomically, truncating any
  /// previous manifest at the path).
  void start_fresh();

  /// Resume after a kill: rewrites the existing manifest atomically keeping
  /// only the header and segment entries [0, next_index) — stale entries and
  /// torn tails from the killed run disappear — and restores the fingerprint
  /// chain position (verified against the kept entries). Header parameters
  /// must match the original run.
  void resume(std::size_t next_index, std::uint64_t chain);

  // Event feed (times must be monotone in the sort key, which engine order
  // guarantees).
  void on_admit(std::uint64_t job, double release, double weight, double size,
                NodeId leaf);
  void on_burst(const Segment& s, std::uint64_t job);
  void on_done(std::uint64_t job, double t);
  void on_shed(double t, std::uint64_t job);
  void on_reject(double t, std::uint64_t job);

  /// Closes one segment holding everything pending if the cap is reached
  /// (or unconditionally with force, unless nothing is pending). Only call
  /// at safe points: every event with sort key <= now must already be fed,
  /// or segment contents would depend on drain timing.
  void commit(bool force);

  /// Flushes the tail segment and appends the final trailer.
  void write_final(std::uint64_t arrivals, std::uint64_t completed,
                   std::uint64_t shed, std::uint64_t rejected,
                   double total_flow, double makespan);

  std::size_t next_index() const { return next_index_; }
  std::uint64_t chain() const { return chain_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    double key = 0.0;
    int rank = 0;
    std::string line;
  };

  void push(double key, int rank, std::string line);
  std::string header_text() const;

  Config cfg_;
  std::vector<double> speeds_;
  std::vector<NodeId> parents_;
  std::vector<char> kinds_;
  NodePolicy policy_;
  double chunk_;
  overload::ShedConfig shed_;
  std::vector<Pending> pending_;
  std::size_t next_index_ = 0;
  std::uint64_t chain_;
  bool started_ = false;
  bool finalized_ = false;
};

/// One violation found by the segment audit.
struct SegmentAuditViolation {
  std::size_t segment = 0;  ///< segment index (or last one for manifest-level)
  std::string message;
};

struct SegmentAuditResult {
  bool ok = false;
  std::vector<SegmentAuditViolation> violations;
  std::size_t segments = 0;
  std::uint64_t payload_lines = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  /// The FIRST segment whose file integrity broke (missing, fingerprint
  /// mismatch, chain mismatch) — treesched_audit names it and suggests
  /// quarantining the exact file.
  bool has_first_bad = false;
  std::size_t first_bad_segment = 0;
  std::string first_bad_path;
};

struct SegmentAuditOptions {
  double tol = 1e-6;
  /// Cap on reported violations (the state machine keeps going regardless).
  std::size_t max_violations = 32;
};

/// Incremental verification of a finished segmented log: fingerprint chain,
/// canonical-order monotonicity, per-node unit capacity and rate==speed,
/// per-job store-and-forward precedence (work on hop i+1 only after hop i
/// delivered the full requirement), retirement discipline (nothing runs
/// after done/shed; rejected jobs never run), and the final trailer's
/// counters and flow sum (recomputed compensated, in completion order —
/// bit-equal by the determinism contract). Memory is O(nodes + live jobs +
/// one segment); segments stream through one at a time.
SegmentAuditResult audit_segments(const std::string& manifest_path,
                                  const SegmentAuditOptions& opts = {});

}  // namespace treesched::sim
