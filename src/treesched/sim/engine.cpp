#include "treesched/sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "treesched/util/assert.hpp"
#include "treesched/util/float_compare.hpp"

namespace treesched::sim {

namespace {
// Completion detection tolerance: event times are exact sums, but pauses
// subtract elapsed*speed, so residuals accumulate a few ulps per event.
constexpr double kWorkTol = 1e-6;
constexpr Time kNever = std::numeric_limits<Time>::infinity();

bool slow_queries_env() {
  const char* env = std::getenv("TREESCHED_SLOW_QUERIES");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}
}  // namespace

Engine::Engine(const Instance& instance, SpeedProfile speeds, EngineConfig cfg)
    : inst_(&instance), speeds_(std::move(speeds)), cfg_(cfg) {
  TS_REQUIRE(speeds_.speeds().size() ==
                 uidx(instance.tree().node_count()),
             "speed profile does not match the tree");
  TS_REQUIRE(cfg_.router_chunk_size >= 0.0, "chunk size must be >= 0");
  if (slow_queries_env()) cfg_.slow_queries = true;
  nodes_.resize(uidx(instance.tree().node_count()));
  if (!cfg_.slow_queries)
    for (NodeState& ns : nodes_) ns.index.attach_pool(&index_pool_);
  jobs_.resize(uidx(instance.job_count()));
  subtree_mutations_.assign(uidx(instance.tree().node_count()), 0);
  if (cfg_.arena_reserve > 0) {
    a_chunks_done_.reserve(cfg_.arena_reserve);
    a_head_rem_.reserve(cfg_.arena_reserve);
    a_key_.reserve(cfg_.arena_reserve);
    a_slot_.reserve(cfg_.arena_reserve);
    a_in_avail_.reserve(cfg_.arena_reserve);
  }
  metrics_.reset(uidx(instance.job_count()));
}

// ---------------------------------------------------------------------------
// Internal helpers
// ---------------------------------------------------------------------------

std::uint32_t Engine::alloc_span(std::size_t len) {
  const std::size_t off = a_in_avail_.size();
  a_chunks_done_.resize(off + len, 0);
  a_head_rem_.resize(off + len, 0.0);
  a_key_.resize(off + len);
  a_slot_.resize(off + len, -1);
  a_in_avail_.resize(off + len, 0);
  return static_cast<std::uint32_t>(off);
}

void Engine::bump_subtree(NodeId v) {
  if (v == tree().root()) return;
  ++subtree_mutations_[uidx(tree().root_child_of(v))];
}

int Engine::path_index(const JobState& js, NodeId v) const {
  TS_REQUIRE(js.admitted, "job not admitted");
  if (js.path != nullptr) {
    // Root-dispatched paths are tree().path_to(leaf): the node at depth d
    // sits at position d - 1, so the lookup is O(1) instead of a scan.
    const int idx = tree().depth(v) - 1;
    TS_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < js.len &&
                   (*js.path)[uidx(idx)] == v,
               "node not on the job's path");
    return idx;
  }
  // Custom paths (arbitrary-source extension) may climb before descending;
  // they are short and rare, so the scan stays.
  for (std::size_t i = 0; i < js.len; ++i)
    if (path_node(js, i) == v) return static_cast<int>(i);
  TS_REQUIRE(false, "node not on the job's path");
  return -1;
}

bool Engine::is_leaf_index(const JobState& js, int idx) const {
  return static_cast<std::size_t>(idx) + 1 == js.len;
}

double Engine::stored_remaining_item(const JobState& js, int idx) const {
  if (is_leaf_index(js, idx)) return js.leaf_rem;
  TS_CHECK(chunks_done(js, uidx(idx)) < js.chunks,
           "no pending chunk on this node");
  return head_rem(js, uidx(idx));
}

double Engine::live_remaining_item(JobId j, int idx) const {
  const JobState& js = jobs_[uidx(j)];
  const NodeId v = path_node(js, uidx(idx));
  double rem = stored_remaining_item(js, idx);
  const NodeState& ns = nodes_[uidx(v)];
  if (ns.has_running && ns.running.job == j)
    rem -= (now_ - ns.burst_start) * node_speed(v);
  return std::max(rem, 0.0);
}

double Engine::stored_remaining_total(const JobState& js, int idx) const {
  if (is_leaf_index(js, idx)) return js.done ? 0.0 : js.leaf_rem;
  if (chunks_done(js, uidx(idx)) == js.chunks) return 0.0;
  return static_cast<double>(js.chunks - chunks_done(js, uidx(idx)) - 1) *
             js.chunk_size +
         head_rem(js, uidx(idx));
}

SjfKey Engine::index_key(JobId j, NodeId v) const {
  return {size_on(j, v), inst_->job(j).release, j};
}

void Engine::index_insert(NodeId v, JobId j, int idx) {
  if (cfg_.slow_queries) return;
  nodes_[uidx(v)].index.insert(index_key(j, v),
                               stored_remaining_total(jobs_[uidx(j)], idx));
}

void Engine::index_refresh(NodeId v, JobId j, int idx) {
  if (cfg_.slow_queries) return;
  nodes_[uidx(v)].index.update(index_key(j, v),
                               stored_remaining_total(jobs_[uidx(j)], idx));
}

void Engine::index_erase(NodeId v, JobId j) {
  if (cfg_.slow_queries) return;
  nodes_[uidx(v)].index.erase(index_key(j, v));
}

double Engine::running_drain(const NodeState& ns, NodeId v) const {
  if (!ns.has_running) return 0.0;
  const double w = (now_ - ns.burst_start) * node_speed(v);
  if (w <= 0.0) return 0.0;
  return std::min(w, ns.running_rem);
}

PriorityKey Engine::make_key(JobId j, int idx, Time avail_time) const {
  const JobState& js = jobs_[uidx(j)];
  const NodeId v = path_node(js, uidx(idx));
  PriorityKey k;
  k.job = j;
  k.chunk = is_leaf_index(js, idx) ? kLeafChunk : chunks_done(js, uidx(idx));
  const Time release = inst_->job(j).release;
  switch (cfg_.node_policy) {
    case NodePolicy::kSjf:
      k.a = size_on(j, v);
      k.b = release;
      break;
    case NodePolicy::kFifo:
      k.a = avail_time;
      k.b = 0.0;
      break;
    case NodePolicy::kSrpt:
      k.a = stored_remaining_item(js, idx);
      k.b = release;
      break;
    case NodePolicy::kLcfs:
      k.a = -avail_time;
      k.b = 0.0;
      break;
    case NodePolicy::kHdf:
      k.a = size_on(j, v) / inst_->job(j).weight;
      k.b = release;
      break;
  }
  return k;
}

// --- availability heap -----------------------------------------------------
//
// Each node's available items form a flat binary min-heap on the full
// PriorityKey order (a total order, so the minimum is unique). The heap
// position of item (job, idx) lives in the job arena (a_slot_) and follows
// every sift, which makes erase-by-item O(log n) with no allocation and no
// tree nodes — the dispatch-index treap's pool idiom, flattened further.

void Engine::avail_set_slot(const AvailEntry& e, std::int32_t pos) {
  const JobState& js = jobs_[uidx(e.key.job)];
  a_slot_[js.span + uidx(e.idx)] = pos;
}

void Engine::avail_sift_up(std::vector<AvailEntry>& h, std::size_t i) {
  const AvailEntry e = h[i];
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (!(e.key < h[p].key)) break;
    h[i] = h[p];
    avail_set_slot(h[i], static_cast<std::int32_t>(i));
    i = p;
  }
  h[i] = e;
  avail_set_slot(e, static_cast<std::int32_t>(i));
}

void Engine::avail_sift_down(std::vector<AvailEntry>& h, std::size_t i) {
  const std::size_t n = h.size();
  const AvailEntry e = h[i];
  for (;;) {
    std::size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && h[c + 1].key < h[c].key) ++c;
    if (!(h[c].key < e.key)) break;
    h[i] = h[c];
    avail_set_slot(h[i], static_cast<std::int32_t>(i));
    i = c;
  }
  h[i] = e;
  avail_set_slot(e, static_cast<std::int32_t>(i));
}

void Engine::avail_push(NodeId v, const PriorityKey& k, int idx) {
  std::vector<AvailEntry>& h = nodes_[uidx(v)].avail;
  h.push_back({k, idx});
  avail_sift_up(h, h.size() - 1);
}

void Engine::avail_remove(NodeId v, JobId j, int idx) {
  std::vector<AvailEntry>& h = nodes_[uidx(v)].avail;
  const JobState& js = jobs_[uidx(j)];
  const std::int32_t pos = a_slot_[js.span + uidx(idx)];
  TS_CHECK(pos >= 0 && static_cast<std::size_t>(pos) < h.size() &&
               h[uidx(pos)].key.job == j && h[uidx(pos)].idx == idx,
           "avail heap slot out of sync");
  a_slot_[js.span + uidx(idx)] = -1;
  const std::size_t last = h.size() - 1;
  const std::size_t p = uidx(pos);
  if (p != last) {
    h[p] = h[last];
    h.pop_back();
    if (p > 0 && h[p].key < h[(p - 1) / 2].key)
      avail_sift_up(h, p);
    else
      avail_sift_down(h, p);
  } else {
    h.pop_back();
  }
}

void Engine::insert_avail(NodeId v, JobId j, int idx, Time t) {
  JobState& js = jobs_[uidx(j)];
  TS_CHECK(!in_avail(js, uidx(idx)), "work item already available");
  const PriorityKey k = make_key(j, idx, t);
  avail_push(v, k, idx);
  in_avail(js, uidx(idx)) = 1;
  avail_key(js, uidx(idx)) = k;
}

void Engine::erase_avail(NodeId v, JobId j, int idx) {
  JobState& js = jobs_[uidx(j)];
  TS_CHECK(in_avail(js, uidx(idx)), "work item not available");
  avail_remove(v, j, idx);
  in_avail(js, uidx(idx)) = 0;
}

void Engine::deliver(NodeId v, JobId j, int idx, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  if (ns.edge_down) {
    // The link from the parent is severed: the data sits at the parent's
    // copy until the matching edge-up flushes it.
    ns.deferred.emplace_back(j, idx);
    return;
  }
  pause(v, t);
  insert_avail(v, j, idx, t);
  resched(v, t);
}

void Engine::accumulate_frac_to(JobId j, Time t) {
  JobState& js = jobs_[uidx(j)];
  if (t <= js.frac_touch) return;
  metrics_.job(j).fractional_area += (t - js.frac_touch) * js.frac;
  js.frac_touch = t;
}

void Engine::pause(NodeId v, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(t >= ns.burst_start - util::kEps, "pause moving backwards");
  if (!ns.has_running) {
    ns.burst_start = t;
    return;
  }
  const double sp = node_speed(v);
  const double w = (t - ns.burst_start) * sp;
  if (w <= 0.0) {
    ns.burst_start = t;
    return;
  }
  const JobId j = ns.running.job;
  JobState& js = jobs_[uidx(j)];
  const int idx = ns.running_idx;
  const double stored = stored_remaining_item(js, idx);
  TS_CHECK(w <= stored + kWorkTol * std::max(1.0, stored),
           "node performed more work than the item had");
  const double done = std::min(w, stored);
  const double rem = stored - done;
  ++mutation_count_;
  bump_subtree(v);

  if (cfg_.record_schedule)
    recorder_.add({v, j, ns.running.chunk, ns.burst_start, t, sp});

  if (is_leaf_index(js, idx)) {
    // Exact fractional flow: constant fraction up to burst start, then a
    // linear drain over the burst (trapezoid).
    accumulate_frac_to(j, ns.burst_start);
    const double p = size_on(j, v);
    const double new_frac = rem / p;
    metrics_.job(j).fractional_area +=
        (t - ns.burst_start) * (js.frac + new_frac) / 2.0;
    js.frac = new_frac;
    js.frac_touch = t;
    js.leaf_rem = rem;
  } else {
    head_rem(js, uidx(idx)) = rem;
  }

  index_refresh(v, j, idx);
  ns.running_rem = stored_remaining_total(js, idx);

  if (cfg_.node_policy == NodePolicy::kSrpt) {
    // Remaining time is the priority: refresh the running item's key.
    erase_avail(v, j, idx);
    PriorityKey k = ns.running;
    k.a = rem;
    avail_push(v, k, idx);
    in_avail(js, uidx(idx)) = 1;
    avail_key(js, uidx(idx)) = k;
    ns.running = k;
  }
  ns.burst_start = t;
}

void Engine::resched(NodeId v, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  if (ns.has_running && !ns.avail.empty() &&
      ns.running == ns.avail.front().key)
    return;  // the pending completion event is still accurate
  ++ns.version;
  if (ns.down || ns.avail.empty()) {
    ns.has_running = false;
    return;
  }
  const AvailEntry top = ns.avail.front();
  ns.running = top.key;
  ns.has_running = true;
  ns.running_idx = top.idx;
  ns.burst_start = t;
  const JobState& js = jobs_[uidx(top.key.job)];
  const double rem = stored_remaining_item(js, top.idx);
  ns.running_rem = stored_remaining_total(js, top.idx);
  events_.push({t + rem / node_speed(v), seq_++, v, ns.version});
}

void Engine::force_resched(NodeId v, Time t) {
  // Unlike resched(), never trust the pending completion event: fault
  // transitions (speed change, crash, recovery) change the finish time even
  // when the running item is still the best one.
  NodeState& ns = nodes_[uidx(v)];
  ++ns.version;
  ns.has_running = false;
  if (ns.down || ns.avail.empty()) return;
  const AvailEntry top = ns.avail.front();
  ns.running = top.key;
  ns.has_running = true;
  ns.running_idx = top.idx;
  ns.burst_start = t;
  const JobState& js = jobs_[uidx(top.key.job)];
  const double rem = stored_remaining_item(js, top.idx);
  ns.running_rem = stored_remaining_total(js, top.idx);
  events_.push({t + rem / node_speed(v), seq_++, v, ns.version});
}

void Engine::handle_completion(NodeId v, Time t) {
  pause(v, t);
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(ns.has_running, "completion event without a running item");
  const PriorityKey item = ns.running;
  const JobId j = item.job;
  JobState& js = jobs_[uidx(j)];
  const int idx = ns.running_idx;
  const double rem = stored_remaining_item(js, idx);
  TS_CHECK(rem <= kWorkTol * std::max(1.0, js.chunk_size),
           "completion fired with work remaining");

  ns.has_running = false;
  erase_avail(v, j, idx);
  ++mutation_count_;
  bump_subtree(v);

  if (is_leaf_index(js, idx)) {
    js.leaf_rem = 0.0;
    accumulate_frac_to(j, t);
    js.frac = 0.0;
    js.done = true;
    ns.inflight.erase(j);
    index_erase(v, j);
    JobRecord& rec = metrics_.job(j);
    rec.completion = t;
    rec.node_completion[uidx(idx)] = t;
    if (observer_) observer_->on_job_completed(*this, j);
    // Retirement point: in streaming mode the record folds into the
    // bounded-memory accumulator now, in completion order (no-op otherwise).
    metrics_.finalize_job(j);
  } else {
    const std::int32_t c = chunks_done(js, uidx(idx));
    TS_CHECK(c == item.chunk, "completed chunk is not the head");
    chunks_done(js, uidx(idx)) = c + 1;
    head_rem(js, uidx(idx)) = js.chunk_size;
    const bool node_finished = (chunks_done(js, uidx(idx)) == js.chunks);
    if (node_finished)
      index_erase(v, j);
    else
      index_refresh(v, j, idx);

    // Next head chunk may already be deliverable on this node.
    if (!node_finished &&
        (idx == 0 ||
         chunks_done(js, uidx(idx)) < chunks_done(js, uidx(idx - 1))))
      insert_avail(v, j, idx, t);

    // Deliver chunk c downstream.
    const bool next_is_leaf = is_leaf_index(js, idx + 1);
    if (!next_is_leaf) {
      if (chunks_done(js, uidx(idx + 1)) == c) {
        // The child was waiting for exactly this chunk.
        deliver(path_node(js, uidx(idx) + 1), j, idx + 1, t);
      }
    } else if (node_finished) {
      // All data arrived at the last router: the leaf work becomes available.
      deliver(path_node(js, uidx(idx) + 1), j, idx + 1, t);
    }

    if (node_finished) {
      ns.inflight.erase(j);
      metrics_.job(j).node_completion[uidx(idx)] = t;
    }
  }
  resched(v, t);
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

void Engine::set_fault_plan(const fault::FaultPlan* plan,
                            RedispatchPolicy* redispatch) {
  TS_REQUIRE(now_ == 0.0 && admitted_count_ == 0,
             "fault plan must be armed before the run starts");
  TS_REQUIRE(cfg_.router_chunk_size == 0.0,
             "fault runs require whole-job forwarding (router_chunk_size 0)");
  if (plan != nullptr) plan->validate(tree());
  fault_plan_ = plan;
  redispatch_ = redispatch;
  fault_cursor_ = 0;
  fault_log_.clear();
}

Time Engine::next_fault_time() const {
  if (fault_plan_ == nullptr || fault_cursor_ >= fault_plan_->events.size())
    return kNever;
  return fault_plan_->events[fault_cursor_].t;
}

void Engine::apply_next_fault() {
  const fault::FaultEvent& fe = fault_plan_->events[fault_cursor_++];
  const Time t = now_;
  ++mutation_count_;  // speed factors and topology state feed the queries
  bump_subtree(fe.node);
  switch (fe.kind) {
    case fault::FaultKind::kNodeDown:
      fault_log_.push_back({FaultRecord::Kind::kNodeDown, t, fe.node, 1.0,
                            kInvalidJob, kInvalidNode});
      apply_node_down(fe.node, t);
      break;
    case fault::FaultKind::kNodeUp:
      fault_log_.push_back({FaultRecord::Kind::kNodeUp, t, fe.node, 1.0,
                            kInvalidJob, kInvalidNode});
      apply_node_up(fe.node, t);
      break;
    case fault::FaultKind::kEdgeDown:
      fault_log_.push_back({FaultRecord::Kind::kEdgeDown, t, fe.node, 1.0,
                            kInvalidJob, kInvalidNode});
      apply_edge_down(fe.node, t);
      break;
    case fault::FaultKind::kEdgeUp:
      fault_log_.push_back({FaultRecord::Kind::kEdgeUp, t, fe.node, 1.0,
                            kInvalidJob, kInvalidNode});
      apply_edge_up(fe.node, t);
      break;
    case fault::FaultKind::kSlow:
      fault_log_.push_back({FaultRecord::Kind::kSlow, t, fe.node, fe.factor,
                            kInvalidJob, kInvalidNode});
      apply_slow(fe.node, fe.factor, t);
      break;
  }
}

void Engine::apply_node_down(NodeId v, Time t) {
  pause(v, t);  // materialize the truthful burst segment up to the crash
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(!ns.down, "node-down on an already-down node");
  if (ns.has_running) {
    // The crash voids the partial progress of the in-flight item: the job
    // reverts to the last fully forwarded copy (the parent finished it, so
    // a pristine copy exists upstream; re-receiving is free in this model).
    const JobId j = ns.running.job;
    JobState& js = jobs_[uidx(j)];
    const int idx = ns.running_idx;
    if (is_leaf_index(js, idx)) {
      const double p = size_on(j, v);
      if (js.leaf_rem < p) {
        accumulate_frac_to(j, t);
        js.frac = 1.0;
        js.frac_touch = t;
        js.leaf_rem = p;
      }
    } else {
      head_rem(js, uidx(idx)) = js.chunk_size;
    }
    index_refresh(v, j, idx);
    if (cfg_.node_policy == NodePolicy::kSrpt && in_avail(js, uidx(idx))) {
      PriorityKey k = avail_key(js, uidx(idx));
      erase_avail(v, j, idx);
      k.a = stored_remaining_item(js, idx);
      avail_push(v, k, idx);
      in_avail(js, uidx(idx)) = 1;
      avail_key(js, uidx(idx)) = k;
    }
    ns.has_running = false;
  }
  ns.down = true;
  ++ns.version;  // invalidate the pending completion event
  ns.burst_start = t;
  if (tree().is_leaf(v)) redispatch_jobs_of(v, t);
}

void Engine::apply_node_up(NodeId v, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(ns.down, "node-up on a node that is not down");
  ns.down = false;
  ns.burst_start = t;
  force_resched(v, t);
}

void Engine::apply_edge_down(NodeId v, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(!ns.edge_down, "edge-down on an already-severed edge");
  (void)t;
  ns.edge_down = true;
}

void Engine::apply_edge_up(NodeId v, Time t) {
  NodeState& ns = nodes_[uidx(v)];
  TS_CHECK(ns.edge_down, "edge-up on an edge that is not down");
  ns.edge_down = false;
  if (ns.deferred.empty()) return;
  pause(v, t);
  for (const auto& [j, idx] : ns.deferred) insert_avail(v, j, idx, t);
  ns.deferred.clear();
  force_resched(v, t);
}

void Engine::apply_slow(NodeId v, double factor, Time t) {
  // Materialize the current burst at the old speed, then switch: a recorded
  // segment never spans a factor change.
  pause(v, t);
  nodes_[uidx(v)].factor = factor;
  force_resched(v, t);
}

void Engine::redispatch_jobs_of(NodeId dead_leaf, Time t) {
  NodeState& ns = nodes_[uidx(dead_leaf)];
  if (ns.inflight.empty()) return;
  // Snapshot ascending job ids: reassign_leaf mutates the inflight set.
  const std::vector<JobId> stranded(ns.inflight.begin(), ns.inflight.end());
  for (const JobId j : stranded) {
    NodeId target = kInvalidNode;
    if (redispatch_ != nullptr) {
      target = redispatch_->reassign(*this, j, dead_leaf);
    } else {
      for (const NodeId leaf : tree().leaves()) {
        if (!nodes_[uidx(leaf)].down) {
          target = leaf;
          break;
        }
      }
    }
    TS_REQUIRE(target != kInvalidNode && tree().is_leaf(target) &&
                   !nodes_[uidx(target)].down,
               "re-dispatch target must be a live machine");
    fault_log_.push_back(
        {FaultRecord::Kind::kRedispatch, t, dead_leaf, 1.0, j, target});
    reassign_leaf(j, target, t);
  }
}

void Engine::reassign_leaf(JobId j, NodeId new_leaf, Time t) {
  ++mutation_count_;  // invalidate policy caches between successive reassigns
  JobState& js = jobs_[uidx(j)];
  TS_CHECK(!js.shed, "re-dispatching a shed job");
  js.redispatched = true;  // recovery claims the job: it is never shed now
  TS_REQUIRE(js.path != nullptr,
             "re-dispatch is unsupported for custom-path jobs");
  TS_CHECK(js.chunks == 1, "re-dispatch requires whole-job forwarding");
  const std::vector<NodeId> old_path = *js.path;  // copy: js.path changes
  const std::vector<NodeId>& new_path = tree().path_to(new_leaf);
  const std::size_t old_len = old_path.size();
  const std::size_t new_len = new_path.size();
  bump_subtree(old_path[0]);
  bump_subtree(new_path[0]);

  // Shared prefix: hops where receipt/processing progress carries over.
  std::size_t shared = 0;
  while (shared < old_len - 1 && shared < new_len - 1 &&
         old_path[shared] == new_path[shared])
    ++shared;

  // Tear the job out of every hop past the divergence point. Work already
  // performed there is lost (the segments stay recorded — the time was
  // genuinely burnt); the data reverts to the copy at new_path[shared-1].
  for (std::size_t i = shared; i < old_len; ++i) {
    const NodeId v = old_path[i];
    NodeState& ns = nodes_[uidx(v)];
    pause(v, t);
    const int idx = static_cast<int>(i);
    if (ns.has_running && ns.running.job == j) ns.has_running = false;
    if (in_avail(js, i)) erase_avail(v, j, idx);
    ns.deferred.erase(
        std::remove_if(ns.deferred.begin(), ns.deferred.end(),
                       [j](const std::pair<JobId, int>& d) {
                         return d.first == j;
                       }),
        ns.deferred.end());
    // A hop the job already finished (a fully forwarded router) dropped it
    // from both structures at completion time.
    if (ns.inflight.erase(j) == 1) index_erase(v, j);
  }

  // Rebuild the per-path job state: prefix entries survive, the rest resets.
  // A longer path moves the job to a fresh arena span; the shared-prefix
  // entries are copied across (their avail-heap back-pointers follow the
  // span automatically — heap entries address items as (job, idx)).
  if (new_len > js.len) {
    const std::uint32_t off = alloc_span(new_len);
    for (std::size_t i = 0; i < shared; ++i) {
      a_chunks_done_[off + i] = a_chunks_done_[js.span + i];
      a_head_rem_[off + i] = a_head_rem_[js.span + i];
      a_key_[off + i] = a_key_[js.span + i];
      a_slot_[off + i] = a_slot_[js.span + i];
      a_in_avail_[off + i] = a_in_avail_[js.span + i];
    }
    js.span = off;
  }
  js.len = static_cast<std::uint32_t>(new_len);
  js.path = &new_path;
  js.leaf = new_leaf;
  for (std::size_t i = shared; i + 1 < new_len; ++i) {
    chunks_done(js, i) = 0;
    head_rem(js, i) = js.chunk_size;
  }
  for (std::size_t i = shared; i < new_len; ++i) {
    in_avail(js, i) = 0;
    avail_key(js, i) = PriorityKey{};
    a_slot_[js.span + i] = -1;
  }
  js.leaf_rem = inst_->processing_time(j, new_leaf);
  accumulate_frac_to(j, t);
  js.frac = 1.0;
  js.frac_touch = t;

  for (std::size_t i = shared; i < new_len; ++i) {
    nodes_[uidx(new_path[i])].inflight.insert(j);
    index_insert(new_path[i], j, static_cast<int>(i));
  }

  JobRecord& rec = metrics_.job(j);
  rec.leaf = new_leaf;
  rec.node_completion.resize(new_len);
  for (std::size_t i = shared; i < new_len; ++i) rec.node_completion[i] = -1.0;

  // The frontier: the first hop with unfinished work. Inside the shared
  // prefix the item is already in the system (available, running, or
  // deferred on a severed edge); past it the parent's completed copy makes
  // exactly the divergence hop deliverable now.
  std::size_t frontier = new_len - 1;
  for (std::size_t i = 0; i < new_len - 1; ++i) {
    if (chunks_done(js, i) < js.chunks) {
      frontier = i;
      break;
    }
  }
  if (frontier >= shared) {
    TS_CHECK(frontier == shared || (frontier == new_len - 1 &&
                                    shared == new_len - 1),
             "re-dispatch frontier past the divergence hop");
    deliver(new_path[frontier], j, static_cast<int>(frontier), t);
  } else {
    const NodeId fv = new_path[frontier];
    const NodeState& fs = nodes_[uidx(fv)];
    const bool deferred_here = std::any_of(
        fs.deferred.begin(), fs.deferred.end(),
        [j](const std::pair<JobId, int>& d) { return d.first == j; });
    TS_CHECK(in_avail(js, frontier) || deferred_here,
             "re-dispatched job lost its frontier work item");
  }

  // Old-branch nodes may have lost their running item.
  for (std::size_t i = shared; i < old_len; ++i)
    force_resched(old_path[i], t);
}

// ---------------------------------------------------------------------------
// Overload protection
// ---------------------------------------------------------------------------

void Engine::set_admission(AdmissionPolicy* admission) {
  TS_REQUIRE(now_ == 0.0 && admitted_count_ == 0 && rejected_count_ == 0,
             "admission controller must be armed before the run starts");
  admission_ = admission;
}

void Engine::reject(JobId j, double f, double bound) {
  TS_REQUIRE(j >= 0 && j < inst_->job_count(), "reject: job id out of range");
  JobState& js = jobs_[uidx(j)];
  TS_REQUIRE(!js.admitted, "reject: job already admitted");
  TS_REQUIRE(!js.rejected, "reject: job already rejected");
  const Job& job = inst_->job(j);
  js.rejected = true;
  ++rejected_count_;
  // The record keeps the static attributes so shed-volume accounting and
  // run-log emission never need the (possibly gone) instance.
  JobRecord& rec = metrics_.job(j);
  rec.release = job.release;
  rec.weight = job.weight;
  rec.size = job.size;
  rec.rejected = true;
  shed_log_.push_back({ShedRecord::Kind::kReject, now_, j, f, bound});
  metrics_.finalize_job(j);
}

void Engine::shed(JobId j) {
  TS_REQUIRE(j >= 0 && j < inst_->job_count(), "shed: job id out of range");
  JobState& js = jobs_[uidx(j)];
  TS_REQUIRE(js.admitted && !js.done,
             "shed: job must be admitted and unfinished");
  TS_REQUIRE(!js.shed, "shed: job already shed");
  TS_REQUIRE(!js.redispatched, "shed: a re-dispatched job is never shed");
  TS_REQUIRE(js.path != nullptr, "shed is unsupported for custom-path jobs");
  const Time t = now_;
  ++mutation_count_;
  const std::vector<NodeId>& path = *js.path;
  bump_subtree(path[0]);
  // Tear the job out of every hop, exactly like the post-divergence half of
  // reassign_leaf: materialize the truthful burst, drop the availability and
  // deferred entries, and erase the queue membership + index entry.
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId v = path[i];
    NodeState& ns = nodes_[uidx(v)];
    pause(v, t);
    const int idx = static_cast<int>(i);
    if (ns.has_running && ns.running.job == j) ns.has_running = false;
    if (in_avail(js, i)) erase_avail(v, j, idx);
    ns.deferred.erase(
        std::remove_if(ns.deferred.begin(), ns.deferred.end(),
                       [j](const std::pair<JobId, int>& d) {
                         return d.first == j;
                       }),
        ns.deferred.end());
    if (ns.inflight.erase(j) == 1) index_erase(v, j);
  }
  // Fractional flow stops accruing at the eviction instant.
  accumulate_frac_to(j, t);
  js.frac = 0.0;
  js.shed = true;
  metrics_.job(j).shed = true;
  shed_log_.push_back({ShedRecord::Kind::kShed, t, j, -1.0, -1.0});
  metrics_.finalize_job(j);
  for (const NodeId v : path) force_resched(v, t);
}

void Engine::log_admission(JobId j, double f, double bound) {
  shed_log_.push_back({ShedRecord::Kind::kAdmit, now_, j, f, bound});
}

// ---------------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------------

void Engine::advance_to(Time t) {
  TS_REQUIRE(t >= now_ - util::kEps, "advance_to cannot move backwards");
  for (;;) {
    const Time ft = next_fault_time();
    const bool fault_due = ft <= t;
    const Time limit = fault_due ? ft : t;
    // Completions at the fault instant are processed before the fault.
    while (const SimEvent* pev = events_.peek()) {
      if (pev->t > limit) break;
      const SimEvent ev = events_.pop();
      if (ev.version != nodes_[uidx(ev.node)].version) continue;  // stale
      now_ = std::max(now_, ev.t);
      handle_completion(ev.node, now_);
      if (observer_) observer_->on_event(*this, now_);
    }
    if (!fault_due) break;
    now_ = std::max(now_, ft);
    apply_next_fault();
  }
  now_ = std::max(now_, t);
}

void Engine::admit(JobId j, NodeId leaf) {
  TS_REQUIRE(j >= 0 && j < inst_->job_count(), "job id out of range");
  TS_REQUIRE(!jobs_[uidx(j)].admitted, "job already admitted");
  TS_REQUIRE(tree().is_leaf(leaf), "assignment target must be a machine");
  const std::vector<NodeId>& path = tree().path_to(leaf);
  TS_CHECK(path.size() >= 2,
           "leaf adjacent to the root slipped through validation");
  admit_on_path(j, &path, path.size());
}

void Engine::admit_via_path(JobId j, std::vector<NodeId> path) {
  TS_REQUIRE(j >= 0 && j < inst_->job_count(), "job id out of range");
  TS_REQUIRE(!jobs_[uidx(j)].admitted, "job already admitted");
  TS_REQUIRE(!path.empty(), "processing path must be non-empty");
  TS_REQUIRE(tree().is_leaf(path.back()), "path must end at a machine");
  std::vector<bool> seen(uidx(tree().node_count()), false);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId v = path[i];
    TS_REQUIRE(v >= 0 && v < tree().node_count(), "path node out of range");
    TS_REQUIRE(!seen[uidx(v)], "path revisits a node");
    seen[uidx(v)] = true;
    TS_REQUIRE(speeds_.speed(v) > 0.0,
               "path node has no processing speed (transit root?)");
    if (i > 0) {
      const bool adjacent = tree().parent(path[i]) == path[i - 1] ||
                            tree().parent(path[i - 1]) == path[i];
      TS_REQUIRE(adjacent, "path nodes must be adjacent in the tree");
    }
  }
  JobState& js = jobs_[uidx(j)];
  js.own_off = static_cast<std::uint32_t>(a_path_.size());
  a_path_.insert(a_path_.end(), path.begin(), path.end());
  admit_on_path(j, nullptr, path.size());
}

void Engine::admit_on_path(JobId j, const std::vector<NodeId>* path,
                           std::size_t len) {
  const Job& job = inst_->job(j);
  TS_REQUIRE(now_ <= job.release + util::kEps,
             "cannot admit a job after its release time has passed");
  advance_to(job.release);

  JobState& js = jobs_[uidx(j)];
  js.admitted = true;
  js.path = path;
  js.span = alloc_span(len);
  js.len = static_cast<std::uint32_t>(len);
  js.leaf = path_node(js, len - 1);
  const NodeId leaf = js.leaf;

  if (cfg_.router_chunk_size > 0.0)
    js.chunks = static_cast<std::int32_t>(
        std::max(1.0, std::ceil(job.size / cfg_.router_chunk_size)));
  else
    js.chunks = 1;
  js.chunk_size = job.size / js.chunks;
  for (std::size_t i = 0; i + 1 < len; ++i) head_rem(js, i) = js.chunk_size;
  js.leaf_rem = inst_->processing_time(j, leaf);
  js.frac = 1.0;
  js.frac_touch = now_;

  ++mutation_count_;
  for (std::size_t i = 0; i < len; ++i) {
    const NodeId v = path_node(js, i);
    bump_subtree(v);
    nodes_[uidx(v)].inflight.insert(j);
    index_insert(v, j, static_cast<int>(i));
  }

  JobRecord& rec = metrics_.job(j);
  rec.release = job.release;
  rec.weight = job.weight;
  rec.size = job.size;
  rec.leaf = leaf;
  rec.node_completion.assign(len, -1.0);

  deliver(path_node(js, 0), j, 0, now_);
  ++admitted_count_;
  if (observer_) observer_->on_job_admitted(*this, j);
}

void Engine::run(AssignmentPolicy& policy) {
  const std::vector<Job>& all = inst_->jobs();
  for (std::size_t i = 0; i < all.size();) {
    // Batched releases: arrivals sharing a release instant form one batch
    // epoch — the clock advances once, then admission + assignment run
    // back-to-back (every pending event is strictly later, so no engine
    // state can change between the batch's jobs other than by the
    // admissions themselves).
    const Time release = all[i].release;
    advance_to(release);
    ++release_epoch_;
    do {
      const Job& job = all[i];
      if (admission_ != nullptr && !admission_->admit(*this, job)) {
        // The controller vetoed the arrival; make sure the refusal is on
        // record even if it forgot to call reject() itself.
        if (!jobs_[uidx(job.id)].rejected) reject(job.id);
      } else {
        const NodeId leaf = policy.assign(*this, job);
        admit(job.id, leaf);
      }
      ++i;
    } while (i < all.size() && all[i].release == release);
  }
  run_to_completion();
}

void Engine::run_with_assignment(const std::vector<NodeId>& leaf_of_job) {
  TS_REQUIRE(leaf_of_job.size() ==
                 uidx(inst_->job_count()),
             "assignment vector must cover every job");
  for (const Job& job : inst_->jobs()) {
    advance_to(job.release);
    admit(job.id, leaf_of_job[uidx(job.id)]);
  }
  run_to_completion();
}

void Engine::run_to_completion() {
  TS_REQUIRE(admitted_count_ + rejected_count_ == inst_->job_count(),
             "run_to_completion with unadmitted jobs");
  for (;;) {
    const Time ft = next_fault_time();
    while (const SimEvent* pev = events_.peek()) {
      if (pev->t > ft) break;
      const SimEvent ev = events_.pop();
      if (ev.version != nodes_[uidx(ev.node)].version) continue;
      now_ = std::max(now_, ev.t);
      handle_completion(ev.node, now_);
      if (observer_) observer_->on_event(*this, now_);
    }
    if (ft == kNever) break;
    now_ = std::max(now_, ft);
    apply_next_fault();
  }
  for (const JobState& js : jobs_)
    TS_CHECK(js.done || js.shed || js.rejected,
             "events drained with unfinished jobs (a hand-written fault plan "
             "that never recovers a node can wedge its queue)");
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double Engine::size_on(JobId j, NodeId v) const {
  return inst_->processing_time(j, v);
}

double Engine::remaining_on(JobId j, NodeId v) const {
  const JobState& js = jobs_[uidx(j)];
  TS_REQUIRE(js.admitted, "remaining_on: job not admitted");
  const NodeState& ns = nodes_[uidx(v)];
  if (ns.has_running && ns.running.job == j) {
    // running_rem caches the stored total as of burst start, so the live
    // value needs only the elapsed-drain adjustment.
    return std::max(ns.running_rem - (now_ - ns.burst_start) * node_speed(v),
                    0.0);
  }
  return stored_remaining_total(js, path_index(js, v));
}

bool Engine::available_on(JobId j, NodeId v) const {
  const JobState& js = jobs_[uidx(j)];
  TS_REQUIRE(js.admitted, "available_on: job not admitted");
  const int idx = path_index(js, v);
  return in_avail(js, uidx(idx)) != 0;
}

int Engine::current_path_index(JobId j) const {
  const JobState& js = jobs_[uidx(j)];
  TS_REQUIRE(js.admitted, "current_path_index: job not admitted");
  const int len = static_cast<int>(js.len);
  if (js.done) return len;
  for (int i = 0; i < len - 1; ++i)
    if (chunks_done(js, uidx(i)) < js.chunks) return i;
  return len - 1;
}

std::vector<JobId> Engine::queue_at(NodeId v) const {
  return {nodes_[uidx(v)].inflight.begin(), nodes_[uidx(v)].inflight.end()};
}

double Engine::higher_priority_remaining(NodeId v, double cand_size,
                                         Time cand_release,
                                         JobId cand_id) const {
  const NodeState& ns = nodes_[uidx(v)];
  if (!cfg_.slow_queries) {
    const SjfKey cand{cand_size, cand_release, cand_id};
    double sum = ns.index.remaining_before(cand);
    // Index entries hold stored (as-of-burst-start) totals; at most one of
    // them — the running item — is stale by the elapsed drain.
    if (ns.has_running && ns.running.job != cand_id &&
        index_key(ns.running.job, v) < cand)
      sum -= running_drain(ns, v);
    return std::max(sum, 0.0);
  }
  double sum = 0.0;
  for (const JobId i : ns.inflight) {
    if (i == cand_id) continue;
    const double pi = size_on(i, v);
    const Time ri = inst_->job(i).release;
    const bool higher =
        pi < cand_size ||
        (pi == cand_size &&
         (ri < cand_release || (ri == cand_release && i < cand_id)));
    // treesched-lint: allow(inv-fp-accum): slow-path mirror of the
    // incremental index; the differential suite compares the two paths
    // bit-exactly, so the naive rounding is load-bearing.
    if (higher) sum += remaining_on(i, v);
  }
  return sum;
}

int Engine::count_larger(NodeId v, double size) const {
  const NodeState& ns = nodes_[uidx(v)];
  if (!cfg_.slow_queries) return ns.index.count_size_greater(size);
  int count = 0;
  for (const JobId i : ns.inflight)
    if (size_on(i, v) > size) ++count;
  return count;
}

double Engine::larger_residual_fraction(NodeId v, double size) const {
  const NodeState& ns = nodes_[uidx(v)];
  if (!cfg_.slow_queries) {
    double sum = ns.index.fraction_size_greater(size);
    if (ns.has_running) {
      const double pr = size_on(ns.running.job, v);
      if (pr > size) sum -= running_drain(ns, v) / pr;
    }
    return std::max(sum, 0.0);
  }
  double sum = 0.0;
  for (const JobId i : ns.inflight) {
    const double pi = size_on(i, v);
    // treesched-lint: allow(inv-fp-accum): slow-path mirror of the
    // incremental index; the differential suite compares the two paths
    // bit-exactly, so the naive rounding is load-bearing.
    if (pi > size) sum += remaining_on(i, v) / pi;
  }
  return sum;
}

double Engine::alpha_leaf(NodeId leaf) const {
  TS_REQUIRE(tree().is_leaf(leaf), "alpha_leaf on non-leaf");
  const NodeState& ns = nodes_[uidx(leaf)];
  if (!cfg_.slow_queries) {
    double sum = ns.index.total_fraction();
    if (ns.has_running)
      sum -= running_drain(ns, leaf) / size_on(ns.running.job, leaf);
    return std::max(sum, 0.0);
  }
  double sum = 0.0;
  // treesched-lint: allow(inv-fp-accum): slow-path mirror of the
  // incremental index; the differential suite compares the two paths
  // bit-exactly, so the naive rounding is load-bearing.
  for (const JobId i : ns.inflight)
    sum += remaining_on(i, leaf) / size_on(i, leaf);
  return sum;
}

double Engine::pending_remaining(NodeId v) const {
  const NodeState& ns = nodes_[uidx(v)];
  if (!cfg_.slow_queries)
    return std::max(ns.index.total_remaining() - running_drain(ns, v), 0.0);
  double sum = 0.0;
  // treesched-lint: allow(inv-fp-accum): slow-path mirror of the
  // incremental index; the differential suite compares the two paths
  // bit-exactly, so the naive rounding is load-bearing.
  for (const JobId i : ns.inflight) sum += remaining_on(i, v);
  return sum;
}

double Engine::alpha_root_child(NodeId root_child) const {
  TS_REQUIRE(tree().parent(root_child) == tree().root(),
             "alpha_root_child on non-root-child");
  double sum = 0.0;
  // treesched-lint: allow(inv-fp-accum): alpha values feed dispatch
  // decisions; their exact rounding is part of the golden-schedule
  // contract shared with the reference simulator.
  for (const NodeId leaf : tree().leaves_under(root_child))
    sum += alpha_leaf(leaf);
  return sum;
}

double Engine::total_remaining_work() const {
  double total = 0.0;
  for (JobId j = 0; j < static_cast<JobId>(jobs_.size()); ++j) {
    const JobState& js = jobs_[uidx(j)];
    if (!js.admitted || js.done || js.shed) continue;
    for (std::size_t i = 0; i < js.len; ++i)
      // treesched-lint: allow(inv-fp-accum): compared against the overload
      // estimator's running sums, which accumulate the same way.
      total += remaining_on(j, path_node(js, i));
  }
  return total;
}

}  // namespace treesched::sim
