// Independent feasibility checker for recorded schedules.
//
// Replays the burst log produced by an Engine run (record_schedule = true)
// and verifies, without trusting any engine state, that the schedule obeys
// the model of Section 2:
//   1. every node processes at most one work item at any instant;
//   2. bursts run exactly at the node's speed;
//   3. each (job, node) receives exactly its required work, chunk by chunk;
//   4. store-and-forward precedence: a chunk starts on a node no earlier
//      than its completion on the parent; leaf work starts only after all
//      of the job's data finished on the last router;
//   5. nothing runs before the job's release;
//   6. the completion times claimed by Metrics match the burst log.
#pragma once

#include <string>
#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/sim/engine.hpp"

namespace treesched::sim {

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 50) errors.push_back(std::move(msg));
  }
  std::string summary() const;
};

/// Validates the recorded schedule of a finished run. `cfg` must be the
/// config the engine ran with (the chunk size determines expected chunking).
ValidationResult validate_schedule(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   const EngineConfig& cfg,
                                   const ScheduleRecorder& recorder,
                                   const Metrics& metrics);

/// Same, with explicit per-job processing paths (for runs that used
/// Engine::admit_via_path — the arbitrary-source extension). `paths[j]`
/// must be the exact node sequence job j was admitted on.
ValidationResult validate_schedule(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   const EngineConfig& cfg,
                                   const ScheduleRecorder& recorder,
                                   const Metrics& metrics,
                                   const std::vector<std::vector<NodeId>>& paths);

}  // namespace treesched::sim
