// Serializable record of a finished simulation run: the engine config, the
// speed profile, every job's processing path and claimed completion, and the
// full burst log. Written by `treesched_run --record-out` and consumed by
// `treesched_audit`, which re-checks the paper's invariants offline without
// trusting any engine state.
//
// Format (line-oriented, '#' comments allowed, full double precision):
//   runlog 1
//   policy <sjf|fifo|srpt|lcfs|hdf>
//   chunk <router_chunk_size>
//   speeds <node_count> <s_0> ... <s_{n-1}>
//   job <id> <completion> <path_len> <v_0> ... <v_{len-1}>
//   seg <node> <job> <chunk> <t0> <t1> <rate>
//
// Fault-injected runs additionally carry the applied fault timeline (in
// application order), which switches treesched_audit into its fault mode:
//   fevent <node-down|node-up|edge-down|edge-up|slow> <t> <node> <factor>
//   redispatch <t> <job> <from> <to>
//
// Overload-protected runs (shed policy != none) carry the admission-control
// config and decision timeline, which arms treesched_audit's overload rules
// (shed jobs never processed afterwards, caps held, deadline bounds
// respected). Runs without shedding emit none of these lines, keeping their
// logs byte-identical to the pre-overload format:
//   shedcfg <none|bounded-queue|largest-first|deadline> <cap> <slack>
//   shed <t> <job>
//   reject <t> <job> <f> <bound>
//   admitf <t> <job> <f> <bound>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/sim/engine.hpp"

namespace treesched::sim {

/// Everything `treesched_audit` needs besides the instance itself.
struct RunLog {
  NodePolicy node_policy = NodePolicy::kSjf;
  double router_chunk_size = 0.0;
  std::vector<double> speeds;                 ///< per node id
  std::vector<std::vector<NodeId>> paths;     ///< per job id: processing path
  std::vector<Time> completion;               ///< per job id; -1 = unfinished
  std::vector<Segment> segments;
  /// Applied fault timeline (plan events + re-dispatch records) in the order
  /// the engine consumed them. Non-empty turns on the audit's fault mode;
  /// `paths` then holds each job's FINAL path (earlier epochs are
  /// reconstructed from the redispatch records).
  std::vector<FaultRecord> faults;
  /// Admission-control configuration of the run. Serialized (and the audit's
  /// overload rules armed) only when the policy is not kNone.
  overload::ShedConfig shed;
  /// Admission-control decision timeline, in decision order.
  std::vector<ShedRecord> sheds;
};

/// Captures a finished engine run. Paths are derived from the recorded leaf
/// assignment (tree().path_to), so this overload covers root-dispatched runs.
RunLog make_run_log(const Instance& instance, const SpeedProfile& speeds,
                    const EngineConfig& cfg, const ScheduleRecorder& recorder,
                    const Metrics& metrics);

/// Same with explicit per-job paths (runs that used Engine::admit_via_path).
RunLog make_run_log(const Instance& instance, const SpeedProfile& speeds,
                    const EngineConfig& cfg, const ScheduleRecorder& recorder,
                    const Metrics& metrics,
                    const std::vector<std::vector<NodeId>>& paths);

/// Captures everything straight from a finished engine, including the fault
/// timeline — the overload fault-injected runs must use.
RunLog make_run_log(const Instance& instance, const Engine& engine);

void write_run_log(std::ostream& os, const RunLog& log);
void write_run_log_file(const std::string& path, const RunLog& log);

/// Concurrent-recording convention: task `index` of a parallel sweep writes
/// to its own file, so no two pool workers ever share a stream. Inserts a
/// zero-padded ".taskNNNNNN" tag before the final extension of `base`
/// ("runs/sweep.log", 7 → "runs/sweep.task000007.log"; extension-less bases
/// get the tag appended). The audit format itself is unchanged — each
/// per-task file is a complete, independently auditable run log.
std::string task_log_path(const std::string& base, std::size_t task_index);

/// Segment-file naming of the streaming run-log format
/// (runlog_segments.hpp): segment `index` of a segmented log rooted at
/// `base` lives in its own file, tagged ".segNNNNNN" before the final
/// extension ("runs/stream.log", 3 → "runs/stream.seg000003.log").
/// Composes with task_log_path — apply task_log_path first, so a recorded
/// streaming sweep cell writes "trace.task000007.seg000003.txt" and cells
/// never collide.
std::string segment_log_path(const std::string& base, std::size_t index);

/// Parses a run log; throws std::invalid_argument on malformed input.
RunLog read_run_log(std::istream& is);
RunLog read_run_log_file(const std::string& path);

}  // namespace treesched::sim
