// Discrete-event simulator for the tree-network scheduling model (Section 2).
//
// Semantics implemented exactly as the paper specifies:
//  * jobs arrive at the root and are immediately dispatched to a leaf;
//  * a job must be processed on every node of the path R(v)..v, in order;
//  * store-and-forward: a node may not start a job until the parent finished
//    it completely (or, in the pipelined extension, finished the chunk);
//  * every node processes at most one job at a time, preemption allowed;
//  * node v has speed s_v: it completes s_v units of work per time unit.
//
// The engine is driven either offline (run(policy)) or incrementally
// (advance_to / admit), which the general-tree algorithm uses to simulate
// its broomstick image online.
//
// Hot-path layout (see MODEL.md "Event queue & memory layout"): the pending
// events live in a calendar queue with exact (t, seq) pop order; each node's
// available work items form a flat binary min-heap with back-pointers in the
// job arena; and all per-(job, path-index) state is structure-of-arrays in
// per-run arenas indexed by a span per job, so admission and delivery do not
// allocate. The slow-query oracle (TREESCHED_SLOW_QUERIES) shares all of
// this — it only changes how the aggregate queries are answered.
//
// Fault extension (set_fault_plan): the engine consumes a declarative
// fault::FaultPlan and interleaves its events deterministically with the
// completion events. A crashed node performs no work and loses the partial
// progress of its in-flight item — the job reverts to the last fully
// forwarded copy at the parent, consistent with store-and-forward. A leaf
// crash triggers failure-aware re-dispatch of every job still assigned to
// it (see RedispatchPolicy). Slowdowns multiply the node's base speed; link
// outages defer deliveries into the severed child until the edge recovers.
// Fault runs require the paper's whole-job forwarding (router_chunk_size
// == 0).
//
// Overload extension (set_admission): an AdmissionPolicy is consulted once
// per arriving job, at its release instant, before leaf assignment. The
// controller may veto the arrival (reject), evict an already-admitted job
// (shed), or record the Lemma-4 bound it admitted under (log_admission);
// every decision lands in shed_log() and is serialized into run logs so
// treesched_audit can re-check the overload invariants offline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/fault/plan.hpp"
#include "treesched/overload/config.hpp"
#include "treesched/sim/dispatch_index.hpp"
#include "treesched/sim/event_queue.hpp"
#include "treesched/sim/metrics.hpp"
#include "treesched/sim/priority.hpp"
#include "treesched/sim/recorder.hpp"

namespace treesched::sim {

class Engine;

/// Immediate-dispatch leaf assignment strategy. `assign` is called exactly
/// when the job arrives (engine time == job release) and must return a leaf
/// of the engine's tree. Implementations may inspect any engine state — all
/// queries reflect the current time only, so policies are genuinely online.
class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;
  virtual NodeId assign(const Engine& engine, const Job& job) = 0;
  virtual const char* name() const = 0;

  /// Streaming endurance runs snapshot the policy alongside the engine: a
  /// policy with internal decision state (rotation counters, RNG position)
  /// must round-trip it here as one whitespace-free token so resumed runs
  /// replay byte-identically. Stateless policies keep the defaults.
  virtual std::string stream_state() const { return "-"; }
  virtual void restore_stream_state(const std::string& state) {
    (void)state;
  }
};

/// Failure-aware re-dispatch hook: when leaf `dead_leaf` crashes, the engine
/// calls reassign once per job still assigned to it (ascending job id) and
/// moves the job to the returned leaf. The target must be a live machine
/// (engine.node_down(target) == false). Work already done on the shared
/// path prefix carries over; everything from the divergence point on
/// restarts from the parent's copy. Without a policy the engine falls back
/// to the first live leaf in node-id order.
class RedispatchPolicy {
 public:
  virtual ~RedispatchPolicy() = default;
  virtual NodeId reassign(const Engine& engine, JobId job,
                          NodeId dead_leaf) = 0;
  virtual const char* name() const = 0;
};

/// Admission-control hook, consulted by run() once per arriving job at its
/// release instant, BEFORE leaf assignment. Returning true admits the job
/// normally; returning false drops it — the controller should first call
/// engine.reject(job.id, ...) to record why (the engine records a bare
/// rejection otherwise). The controller may also evict already-admitted,
/// still-unfinished jobs via engine.shed() to make room. Decisions must be
/// pure functions of engine queries and static job attributes so degraded
/// runs stay byte-reproducible across thread counts and query modes.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual bool admit(Engine& engine, const Job& job) = 0;
  virtual const char* name() const = 0;
};

/// Hook for invariant monitors (Lemma 1/2 checks, dual-fitting recorders).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// After every processed completion event (engine state is consistent).
  virtual void on_event(const Engine& /*engine*/, Time /*t*/) {}
  /// After a job is admitted (assigned and registered on its path).
  virtual void on_job_admitted(const Engine& /*engine*/, JobId /*j*/) {}
  /// After a job completes at its leaf.
  virtual void on_job_completed(const Engine& /*engine*/, JobId /*j*/) {}
};

/// One applied fault-timeline entry, in application order: every consumed
/// plan event plus one kRedispatch record per moved job. Serialized into
/// run logs so treesched_audit can re-check the recovery invariants
/// offline.
struct FaultRecord {
  enum class Kind : std::uint8_t {
    kNodeDown,
    kNodeUp,
    kEdgeDown,
    kEdgeUp,
    kSlow,
    kRedispatch,
  };
  Kind kind = Kind::kNodeDown;
  Time t = 0.0;
  NodeId node = kInvalidNode;  ///< affected node; the dead leaf for kRedispatch
  double factor = 1.0;         ///< kSlow only
  JobId job = kInvalidJob;     ///< kRedispatch only
  NodeId to = kInvalidNode;    ///< kRedispatch only: the new leaf
};

/// One admission-control decision, in decision order. Serialized into run
/// logs (shed/reject/admitf lines) so treesched_audit can verify that shed
/// jobs were never processed afterwards, caps held, and deadline admissions
/// respected the recorded Lemma-4 bound.
struct ShedRecord {
  enum class Kind : std::uint8_t {
    kReject,  ///< arriving job refused at the root
    kShed,    ///< already-admitted job evicted from its path
    kAdmit,   ///< deadline-policy admission with its recorded F bound
  };
  Kind kind = Kind::kReject;
  Time t = 0.0;
  JobId job = kInvalidJob;
  double f = -1.0;      ///< Lemma-4 bound F(j, leaf) evaluated; -1 if unused
  double bound = -1.0;  ///< admission threshold slack * p_j; -1 if unused
};

struct EngineConfig {
  /// Discipline used on every node (the paper's algorithm uses SJF).
  NodePolicy node_policy = NodePolicy::kSjf;
  /// Log every processing burst for the validator.
  bool record_schedule = false;
  /// > 0 enables the pipelined-routing extension (Section 2): each job's
  /// data is forwarded in equal chunks of at most this size; a router may
  /// forward a chunk as soon as it finished it. The leaf still starts only
  /// once all data arrived. 0 = the paper's store-and-forward of whole jobs.
  double router_chunk_size = 0.0;
  /// Differential-testing oracle: answer the aggregate queries
  /// (higher_priority_remaining, count_larger, larger_residual_fraction,
  /// alpha_leaf, pending_remaining) by rescanning Q_v instead of consulting
  /// the incremental per-node dispatch indices, and skip index maintenance
  /// entirely — the seed implementation, kept as the ground truth the fast
  /// path is differential-tested against. Also forced on by setting the
  /// TREESCHED_SLOW_QUERIES environment variable to anything but "0".
  bool slow_queries = false;
  /// Pre-sizing hint for the per-run job-state arenas, in per-path-index
  /// entries (roughly sum of path lengths over admitted jobs). Streaming
  /// drivers pass the previous window's high-water mark (arena_size()) so
  /// rotated windows never re-grow the arenas. 0 = grow on demand. Purely a
  /// capacity hint: observable behavior is identical for any value.
  std::size_t arena_reserve = 0;
  /// Overload protection. Purely descriptive at the engine level (recorded
  /// into run logs); the actual decisions are made by the AdmissionPolicy
  /// the caller arms via set_admission. kNone + no admission policy is
  /// byte-identical to the pre-overload engine.
  overload::ShedConfig shed;
};

/// The simulator. Non-copyable; references the Instance (not owned — the
/// caller keeps it alive for the engine's lifetime).
class Engine {
 public:
  Engine(const Instance& instance, SpeedProfile speeds, EngineConfig cfg = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- faults ------------------------------------------------------------

  /// Arms the fault plan (validated against the tree; kept alive by the
  /// caller). Must be called before any job is admitted or time advanced,
  /// and requires whole-job forwarding (router_chunk_size == 0).
  /// `redispatch` (optional, caller-owned) handles leaf crashes; nullptr
  /// falls back to the first live leaf.
  void set_fault_plan(const fault::FaultPlan* plan,
                      RedispatchPolicy* redispatch = nullptr);

  bool node_down(NodeId v) const { return nodes_[uidx(v)].down; }
  bool edge_down(NodeId v) const { return nodes_[uidx(v)].edge_down; }
  /// Current slowdown multiplier of v (1.0 = nominal).
  double fault_factor(NodeId v) const { return nodes_[uidx(v)].factor; }
  /// Applied fault timeline (plan events + re-dispatch records), in order.
  const std::vector<FaultRecord>& fault_log() const { return fault_log_; }

  // --- overload protection -----------------------------------------------

  /// Arms the admission controller (caller-owned; kept alive for the run).
  /// Must be set before any job is admitted or time advanced. run() then
  /// consults it once per arriving job; a false verdict skips both leaf
  /// assignment and admission for that job.
  void set_admission(AdmissionPolicy* admission);

  /// Records the refusal of an arriving, not-yet-admitted job. `f`/`bound`
  /// carry the deadline policy's Lemma-4 evaluation (-1 elsewhere).
  void reject(JobId j, double f = -1.0, double bound = -1.0);

  /// Evicts an admitted, unfinished job from every hop of its path: its
  /// in-flight work items disappear, partial progress is abandoned (the
  /// recorded segments stay — that time was genuinely burnt), and the job
  /// never completes. Re-dispatched jobs are never shed (the recovery
  /// invariant would otherwise lose the redispatch chain's final assignee).
  void shed(JobId j);

  /// Deadline-policy bookkeeping: records that job j was admitted with
  /// Lemma-4 bound `f` against threshold `bound` (audited offline).
  void log_admission(JobId j, double f, double bound);

  bool job_shed(JobId j) const { return jobs_[uidx(j)].shed; }
  bool job_rejected(JobId j) const { return jobs_[uidx(j)].rejected; }
  /// True once fault recovery has re-dispatched j (such jobs are shed-exempt).
  bool job_redispatched(JobId j) const { return jobs_[uidx(j)].redispatched; }
  /// Admission-control decision timeline, in decision order.
  const std::vector<ShedRecord>& shed_log() const { return shed_log_; }

  // --- driving -----------------------------------------------------------

  /// Processes all events up to and including time t; afterwards now() == t
  /// (unless already past t, which is an error only if t < now()).
  void advance_to(Time t);

  /// Admits job j (must not be admitted yet) assigned to `leaf`. Advances
  /// the engine to the job's release time first; requires now() <= release.
  void admit(JobId j, NodeId leaf);

  /// Extension (the paper's future-work model of jobs created at arbitrary
  /// nodes): admits job j to be processed along an explicit node path,
  /// typically tree().path_between(job.source, leaf). The path must be a
  /// chain of adjacent tree nodes ending at a machine, with no repeats;
  /// every path node needs positive speed (the root may appear as a transit
  /// router). To validate such runs, use the validate_schedule overload
  /// that takes the per-job paths.
  void admit_via_path(JobId j, std::vector<NodeId> path);

  /// Offline convenience: admits every job of the instance in release order
  /// using `policy` for leaf assignment, then drains all events. Arrivals
  /// sharing a release instant form one batch epoch: the clock advances once
  /// per distinct release, then the batch's admission checks and greedy
  /// assignments run back-to-back (no event can be pending between them).
  void run(AssignmentPolicy& policy);

  /// Offline convenience with a fixed assignment (leaf per job id).
  void run_with_assignment(const std::vector<NodeId>& leaf_of_job);

  /// Drains every pending event. All admitted jobs complete.
  void run_to_completion();

  // --- identity ----------------------------------------------------------

  Time now() const { return now_; }
  const Instance& instance() const { return *inst_; }
  const Tree& tree() const { return inst_->tree(); }
  const SpeedProfile& speeds() const { return speeds_; }
  const EngineConfig& config() const { return cfg_; }

  // --- per-job state (as of now()) ----------------------------------------

  bool admitted(JobId j) const { return jobs_[uidx(j)].admitted; }
  bool completed(JobId j) const { return jobs_[uidx(j)].done; }
  NodeId assigned_leaf(JobId j) const { return jobs_[uidx(j)].leaf; }

  /// p_{j,v}: the original processing requirement of j on v.
  double size_on(JobId j, NodeId v) const;

  /// p^A_{j,v}(now): remaining work of j on v (full if j hasn't reached v,
  /// 0 if finished there). Requires v on j's assigned path.
  double remaining_on(JobId j, NodeId v) const;

  /// True if some work of j is available to schedule on v right now: data
  /// has arrived from the parent (fully, or the next chunk in pipelined
  /// mode) and work remains on v. Requires v on j's path.
  bool available_on(JobId j, NodeId v) const;

  /// Index on j's path of the first node with unfinished work (the node the
  /// job is "at"); path length if the job is done. Requires j admitted.
  int current_path_index(JobId j) const;

  /// Q_v(now): admitted jobs routed through v with unfinished work on v,
  /// ascending job id. Returns a copy; iteration-heavy callers should use
  /// inflight_at instead.
  std::vector<JobId> queue_at(NodeId v) const;
  /// Q_v(now) by const reference (ascending job id) — the allocation-free
  /// iteration path for per-leaf policy loops and monitors.
  // treesched-lint: allow(perf-engine-hot-container): the ordered std::set
  // is the public Q_v iteration contract (ascending job id) that policies,
  // monitors and the audit replay rely on; membership changes once per
  // job-hop, not per event, so it is off the per-event hot path.
  const std::set<JobId>& inflight_at(NodeId v) const {
    return nodes_[uidx(v)].inflight;
  }
  std::size_t queue_size(NodeId v) const { return nodes_[uidx(v)].inflight.size(); }

  /// Counts every state mutation that can change the aggregate queries
  /// (admissions, materialized bursts, completions, fault transitions,
  /// re-dispatches). Together with now() this forms the epoch key policy
  /// layers use to cache per-root-child aggregates across repeated
  /// assignment-cost evaluations at one instant.
  std::uint64_t mutation_count() const { return mutation_count_; }

  /// Per-root-child mutation epoch: bumped exactly when a mutation touches
  /// state under that root child (admission, burst materialization,
  /// completion, shed, fault transition, re-dispatch endpoint). Lets policy
  /// caches invalidate only the touched subtree instead of every root child
  /// — e.g. a shed cascade under one rack keeps the other racks' cached
  /// congestion terms valid. Requires a root child.
  std::uint64_t subtree_mutation_count(NodeId root_child) const {
    return subtree_mutations_[uidx(root_child)];
  }

  /// Number of release batches started by run(): arrivals sharing a release
  /// instant share one epoch. Monotone during run(); 0 before.
  std::uint64_t release_epoch() const { return release_epoch_; }

  // --- the paper's aggregate queries (SJF ordering) ------------------------

  /// Sum over i in Q_v with strictly higher SJF priority than a candidate
  /// (size-on-v, release, id) of remaining_on(i, v). This is
  /// sum_{i in S_{v,cand} \ {cand}} p^A_{i,v}(now).
  double higher_priority_remaining(NodeId v, double cand_size,
                                   Time cand_release, JobId cand_id) const;

  /// |{ i in Q_v : p_{i,v} > size }| (strictly larger original size).
  int count_larger(NodeId v, double size) const;

  /// sum_{i in Q_v, p_{i,v} > size} remaining_on(i,v) / p_{i,v} — the weight
  /// used by F' in the unrelated assignment rule (Section 3.6).
  double larger_residual_fraction(NodeId v, double size) const;

  /// sum_{i in Q_v} remaining_on(i, v): total queued volume pending at v
  /// (the load-aware baselines' bottleneck term). O(1) on the fast path.
  double pending_remaining(NodeId v) const;

  /// alpha_{v,now} for a root child v (Section 3.5): total remaining leaf
  /// fraction over all jobs routed through v and unfinished at their leaf.
  double alpha_root_child(NodeId root_child) const;

  /// alpha_{v,now} for a leaf (Section 3.6): remaining fraction summed over
  /// the jobs assigned to it.
  double alpha_leaf(NodeId leaf) const;

  // --- results -------------------------------------------------------------

  const Metrics& metrics() const { return metrics_; }
  /// Mutable access for streaming drivers (enable_streaming at window start,
  /// finalization carry-over). The engine itself owns all record writes.
  Metrics& metrics() { return metrics_; }
  const ScheduleRecorder& recorder() const { return recorder_; }
  /// Mutable access for streaming drivers that drain recorded segments into
  /// run-log segment files between rotations (recorder().clear()).
  ScheduleRecorder& recorder() { return recorder_; }
  void set_observer(EngineObserver* obs) { observer_ = obs; }

  /// Total work still unfinished anywhere (for conservation tests).
  double total_remaining_work() const;

  /// True when no events are pending (all admitted jobs finished).
  bool drained() const { return events_.empty(); }

  /// Current size of the per-run job-state arenas, in per-path-index
  /// entries — the high-water mark streaming drivers feed back as
  /// EngineConfig::arena_reserve when they rotate windows.
  std::size_t arena_size() const { return a_in_avail_.size(); }

  /// Pending events in the calendar queue — a direct backlog/memory pressure
  /// reading for the resource governor (guard/governor.hpp).
  std::size_t event_queue_size() const { return events_.size(); }

  // --- snapshot / restore --------------------------------------------------

  /// Serializes the full live simulation state (clock, per-job stored
  /// arrays, per-node running bursts and availability sets, pending event
  /// queue, shed log, metrics incl. streaming accumulator) as text at full
  /// double precision, such that load_state + replay is byte-identical to
  /// the uninterrupted run. Dispatch-index treaps are NOT serialized — their
  /// shape is a pure function of the key set, so load_state rebuilds them.
  /// Restrictions (TS_REQUIREd): no fault plan, no custom admit_via_path
  /// paths, whole-job forwarding or chunked both fine.
  void save_state(std::ostream& os) const;

  /// Restores state captured by save_state into a PRISTINE engine (nothing
  /// admitted, clock at 0) built over the same tree/speeds/policy config.
  /// The instance may have MORE jobs than the snapshot (window extension);
  /// the extra jobs must all be untouched in the snapshot. slow_queries may
  /// differ from the saving engine — indices are rebuilt or skipped to match
  /// this engine's own mode. Arm set_admission BEFORE calling load_state.
  void load_state(std::istream& is);

 private:
  /// One member of a node's availability heap. The heap is ordered by the
  /// full PriorityKey (a total order — ties break by job id then chunk), so
  /// the minimum is unique and pops are deterministic. `idx` caches the
  /// item's path index; the item's current heap position lives in the job
  /// arena (a_slot_) and is maintained through every sift.
  struct AvailEntry {
    PriorityKey key;
    std::int32_t idx = 0;
  };

  struct NodeState {
    std::vector<AvailEntry> avail;  ///< flat min-heap of available items
    // treesched-lint: allow(perf-engine-hot-container): backing store of the
    // public inflight_at contract (ascending-id iteration of Q_v); mutated
    // once per job-hop, not per event — see the accessor's note.
    std::set<JobId> inflight;      ///< Q_v: routed through, unfinished here
    /// Incremental SJF aggregates over `inflight` (empty in slow-query
    /// mode); values are the stored remaining as of the last materialized
    /// burst, so queries subtract the running item's live drain.
    DispatchIndex index;
    PriorityKey running{};         ///< cached top at burst start
    bool has_running = false;
    std::int32_t running_idx = 0;  ///< path index of the running item
    /// Stored remaining-on-v of the running item's job (whole job, pending
    /// chunks included) as of burst_start — refreshed whenever the stored
    /// arrays mutate, so remaining_on and the aggregate-query adjustments
    /// never re-derive it per call.
    double running_rem = 0.0;
    Time burst_start = 0.0;
    std::uint64_t version = 0;     ///< invalidates stale completion events
    // Fault state.
    bool down = false;             ///< crashed: runs nothing until recovery
    bool edge_down = false;        ///< link from the parent severed
    double factor = 1.0;           ///< slowdown multiplier on the base speed
    /// Deliveries (job, path index) blocked by the severed incoming edge,
    /// in arrival order; flushed on edge recovery.
    std::vector<std::pair<JobId, int>> deferred;
  };

  /// Per-job state. All per-path-index arrays (chunk progress, head
  /// remainders, availability keys/flags/heap slots) live in the engine's
  /// per-run arenas as structure-of-arrays, addressed by [span, span + len);
  /// the struct itself holds only scalars, so admission never allocates
  /// per-job heap blocks.
  struct JobState {
    bool admitted = false;
    bool done = false;
    bool shed = false;          ///< evicted by the admission controller
    bool rejected = false;      ///< refused at arrival (never admitted)
    bool redispatched = false;  ///< moved by fault recovery (never shed)
    NodeId leaf = kInvalidNode;
    /// Tree-owned processing path; nullptr for admit_via_path jobs, whose
    /// node sequence lives in a_path_ at [own_off, own_off + len).
    const std::vector<NodeId>* path = nullptr;
    std::uint32_t span = 0;     ///< arena offset of the per-path-index state
    std::uint32_t len = 0;      ///< path length (== span length)
    std::uint32_t own_off = 0;  ///< a_path_ offset for custom paths
    std::int32_t chunks = 1;    ///< router chunk count (1 = paper mode)
    double chunk_size = 0.0;    ///< router work per chunk
    double leaf_rem = 0.0;
    // Fractional flow accounting (exact, piecewise linear).
    double frac = 1.0;
    Time frac_touch = 0.0;
  };

  // Path access through the span views (custom paths live in a_path_).
  std::size_t path_len(const JobState& js) const { return js.len; }
  NodeId path_node(const JobState& js, std::size_t i) const {
    return js.path != nullptr ? (*js.path)[i] : a_path_[js.own_off + i];
  }
  bool has_custom_path(const JobState& js) const {
    return js.admitted && js.path == nullptr;
  }

  // Arena views of the per-(job, path-index) state.
  std::int32_t& chunks_done(const JobState& js, std::size_t i) {
    return a_chunks_done_[js.span + i];
  }
  std::int32_t chunks_done(const JobState& js, std::size_t i) const {
    return a_chunks_done_[js.span + i];
  }
  double& head_rem(const JobState& js, std::size_t i) {
    return a_head_rem_[js.span + i];
  }
  double head_rem(const JobState& js, std::size_t i) const {
    return a_head_rem_[js.span + i];
  }
  PriorityKey& avail_key(const JobState& js, std::size_t i) {
    return a_key_[js.span + i];
  }
  const PriorityKey& avail_key(const JobState& js, std::size_t i) const {
    return a_key_[js.span + i];
  }
  std::uint8_t& in_avail(const JobState& js, std::size_t i) {
    return a_in_avail_[js.span + i];
  }
  std::uint8_t in_avail(const JobState& js, std::size_t i) const {
    return a_in_avail_[js.span + i];
  }

  /// Appends `len` zero-initialized entries to every arena array (one shared
  /// offset space) and returns their offset.
  std::uint32_t alloc_span(std::size_t len);

  // Availability-heap maintenance (allocation-free once capacity is warm).
  void avail_set_slot(const AvailEntry& e, std::int32_t pos);
  void avail_sift_up(std::vector<AvailEntry>& h, std::size_t i);
  void avail_sift_down(std::vector<AvailEntry>& h, std::size_t i);
  void avail_push(NodeId v, const PriorityKey& k, int idx);
  void avail_remove(NodeId v, JobId j, int idx);

  void admit_on_path(JobId j, const std::vector<NodeId>* path,
                     std::size_t len);
  int path_index(const JobState& js, NodeId v) const;
  bool is_leaf_index(const JobState& js, int idx) const;
  double stored_remaining_item(const JobState& js, int idx) const;
  /// Whole remaining of (j, idx) on its node as of the stored arrays
  /// (pending chunks included; no running-burst adjustment) — the value the
  /// dispatch index carries and remaining_on starts from.
  double stored_remaining_total(const JobState& js, int idx) const;
  double live_remaining_item(JobId j, int idx) const;

  // Dispatch-index maintenance (no-ops in slow-query mode). Membership
  // mirrors the inflight sets exactly; values mirror stored_remaining_total.
  SjfKey index_key(JobId j, NodeId v) const;
  void index_insert(NodeId v, JobId j, int idx);
  void index_refresh(NodeId v, JobId j, int idx);
  void index_erase(NodeId v, JobId j);
  /// Work the running burst of v has drained off its item since burst
  /// start, clamped the way remaining_on clamps (never below zero).
  double running_drain(const NodeState& ns, NodeId v) const;

  /// Effective processing speed of v right now (base speed x slowdown).
  double node_speed(NodeId v) const {
    return speeds_.speed(v) * nodes_[uidx(v)].factor;
  }

  /// Bumps the per-root-child mutation epoch of the subtree containing v
  /// (no-op for the root, whose queue state feeds no policy cache).
  void bump_subtree(NodeId v);

  PriorityKey make_key(JobId j, int idx, Time avail_time) const;
  void insert_avail(NodeId v, JobId j, int idx, Time t);
  void erase_avail(NodeId v, JobId j, int idx);

  /// Makes work item (j, idx) available on v — or, if v's incoming edge is
  /// down, defers it until the edge recovers.
  void deliver(NodeId v, JobId j, int idx, Time t);

  /// Materializes the running burst of v up to time t (records the segment,
  /// updates remaining work and fractional areas). Leaves the burst running.
  void pause(NodeId v, Time t);

  /// Re-evaluates which item v should run at time t (after pause + any
  /// avail-heap mutations) and schedules its completion event.
  void resched(NodeId v, Time t);

  /// Like resched but never trusts the pending completion event — used after
  /// fault transitions (speed change, crash, recovery) that invalidate it.
  void force_resched(NodeId v, Time t);

  void handle_completion(NodeId v, Time t);
  void accumulate_frac_to(JobId j, Time t);

  // Fault machinery.
  Time next_fault_time() const;
  void apply_next_fault();
  void apply_node_down(NodeId v, Time t);
  void apply_node_up(NodeId v, Time t);
  void apply_edge_down(NodeId v, Time t);
  void apply_edge_up(NodeId v, Time t);
  void apply_slow(NodeId v, double factor, Time t);
  /// Re-dispatches every job still assigned to the crashed leaf.
  void redispatch_jobs_of(NodeId dead_leaf, Time t);
  /// Moves job j to new_leaf: keeps the shared path prefix, restarts the
  /// rest from the parent's copy, delivers the frontier item.
  void reassign_leaf(JobId j, NodeId new_leaf, Time t);

  const Instance* inst_;
  SpeedProfile speeds_;
  EngineConfig cfg_;
  std::vector<NodeState> nodes_;
  std::vector<JobState> jobs_;
  EventQueue events_;
  /// Shared treap node pool behind every per-node dispatch index — one
  /// contiguous allocation for the whole engine instead of one vector per
  /// node (the calendar-queue PR extended the treap's pool idiom this way).
  TreapPool index_pool_;
  // Per-run job-state arenas (see JobState). One shared offset space; reset
  // happens by engine teardown — streaming drivers rebuild the engine per
  // window and carry arena_size() forward as the arena_reserve hint.
  std::vector<std::int32_t> a_chunks_done_;
  std::vector<double> a_head_rem_;
  std::vector<PriorityKey> a_key_;
  std::vector<std::int32_t> a_slot_;  ///< heap position per item; -1 = absent
  std::vector<std::uint8_t> a_in_avail_;  ///< byte-backed (no bit proxies)
  std::vector<NodeId> a_path_;  ///< backing storage for custom paths
  std::vector<std::uint64_t> subtree_mutations_;  ///< per root child
  Metrics metrics_;
  ScheduleRecorder recorder_;
  EngineObserver* observer_ = nullptr;
  const fault::FaultPlan* fault_plan_ = nullptr;
  RedispatchPolicy* redispatch_ = nullptr;
  std::size_t fault_cursor_ = 0;
  std::vector<FaultRecord> fault_log_;
  AdmissionPolicy* admission_ = nullptr;
  std::vector<ShedRecord> shed_log_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t mutation_count_ = 0;
  std::uint64_t release_epoch_ = 0;
  JobId admitted_count_ = 0;
  JobId rejected_count_ = 0;
};

}  // namespace treesched::sim
