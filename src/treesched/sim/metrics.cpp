#include "treesched/sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "treesched/util/assert.hpp"
#include "treesched/util/csum.hpp"

namespace treesched::sim {

void Metrics::reset(std::size_t job_count) {
  jobs_.assign(job_count, JobRecord{});
  for (std::size_t j = 0; j < job_count; ++j)
    jobs_[j].id = static_cast<JobId>(j);
}

bool Metrics::all_completed() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const JobRecord& r) { return r.completed(); });
}

std::size_t Metrics::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.completed(); }));
}

double Metrics::total_flow_time() const {
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(r.flow());
  return total.value();
}

double Metrics::mean_flow_time() const {
  const std::size_t n = completed_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return total_flow_time() / static_cast<double>(n);
}

std::size_t Metrics::shed_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.shed; }));
}

std::size_t Metrics::rejected_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.rejected; }));
}

std::size_t Metrics::admitted_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.admitted(); }));
}

double Metrics::shed_volume() const {
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.shed || r.rejected) total.add(r.size);
  return total.value();
}

double Metrics::goodput() const {
  const std::size_t n = completed_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const double span = makespan();
  if (span <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(n) / span;
}

double Metrics::mean_flow_time_admitted() const {
  const std::size_t n = admitted_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return total_flow_time() / static_cast<double>(n);
}

double Metrics::flow_percentile(double q) const {
  TS_REQUIRE(q >= 0.0 && q <= 1.0, "flow_percentile requires q in [0, 1]");
  std::vector<double> flows;
  flows.reserve(jobs_.size());
  for (const auto& r : jobs_)
    if (r.completed()) flows.push_back(r.flow());
  if (flows.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(flows.begin(), flows.end());
  const double rank = std::ceil(q * static_cast<double>(flows.size()));
  const std::size_t i =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return flows[std::min(i, flows.size() - 1)];
}

double Metrics::total_fractional_flow_time() const {
  util::CompensatedSum total;
  for (const auto& r : jobs_) total.add(r.fractional_area);
  return total.value();
}

double Metrics::total_weighted_flow_time() const {
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(r.weight * r.flow());
  return total.value();
}

double Metrics::total_weighted_fractional_flow_time() const {
  util::CompensatedSum total;
  for (const auto& r : jobs_) total.add(r.weight * r.fractional_area);
  return total.value();
}

double Metrics::max_flow_time() const {
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.flow());
  return mx;
}

double Metrics::lk_norm_flow_time(double k) const {
  TS_REQUIRE(k >= 1.0, "l_k norm requires k >= 1");
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(std::pow(r.flow(), k));
  return std::pow(total.value(), 1.0 / k);
}

double Metrics::makespan() const {
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.completion);
  return mx;
}

}  // namespace treesched::sim
