#include "treesched/sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "treesched/util/assert.hpp"

namespace treesched::sim {

void Metrics::reset(std::size_t job_count) {
  jobs_.assign(job_count, JobRecord{});
  for (std::size_t j = 0; j < job_count; ++j)
    jobs_[j].id = static_cast<JobId>(j);
}

bool Metrics::all_completed() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const JobRecord& r) { return r.completed(); });
}

std::size_t Metrics::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.completed(); }));
}

double Metrics::total_flow_time() const {
  double total = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) total += r.flow();
  return total;
}

double Metrics::mean_flow_time() const {
  const std::size_t n = completed_count();
  return n == 0 ? 0.0 : total_flow_time() / static_cast<double>(n);
}

double Metrics::total_fractional_flow_time() const {
  double total = 0.0;
  for (const auto& r : jobs_) total += r.fractional_area;
  return total;
}

double Metrics::total_weighted_flow_time() const {
  double total = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) total += r.weight * r.flow();
  return total;
}

double Metrics::total_weighted_fractional_flow_time() const {
  double total = 0.0;
  for (const auto& r : jobs_) total += r.weight * r.fractional_area;
  return total;
}

double Metrics::max_flow_time() const {
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.flow());
  return mx;
}

double Metrics::lk_norm_flow_time(double k) const {
  TS_REQUIRE(k >= 1.0, "l_k norm requires k >= 1");
  double total = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) total += std::pow(r.flow(), k);
  return std::pow(total, 1.0 / k);
}

double Metrics::makespan() const {
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.completion);
  return mx;
}

}  // namespace treesched::sim
