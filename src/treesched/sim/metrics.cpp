#include "treesched/sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "treesched/util/assert.hpp"
#include "treesched/util/csum.hpp"
#include "treesched/util/hash.hpp"

namespace treesched::sim {

namespace {

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag, std::string("metrics load: expected '") + tag +
                                   "', got '" + got + "'");
}

void save_csum(std::ostream& os, const util::CompensatedSum& s) {
  os << s.sum() << ' ' << s.compensation();
}

void load_csum(std::istream& is, util::CompensatedSum& s) {
  double sum = 0.0, comp = 0.0;
  is >> sum >> comp;
  s.set_state(sum, comp);
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamAccumulator
// ---------------------------------------------------------------------------

void StreamAccumulator::fold(const JobRecord& r) {
  if (r.completed()) {
    ++completed;
    const double f = r.flow();
    flow.add(f);
    weighted_flow.add(r.weight * f);
    max_flow = std::max(max_flow, f);
    makespan = std::max(makespan, r.completion);
    flow_digest.add(f);
    p99_marker.add(f);
  }
  if (r.shed) ++shed;
  if (r.rejected) ++rejected;
  if (r.admitted()) ++admitted;
  if (r.shed || r.rejected) shed_volume.add(r.size);
  frac.add(r.fractional_area);
  weighted_frac.add(r.weight * r.fractional_area);
}

namespace {

/// Canonical serialized head (counters + compensated sums) — the bytes the
/// self-checksum covers. The sketches that follow carry their own checksums.
std::string acc_head(const StreamAccumulator& a) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "acc " << a.completed << ' ' << a.shed << ' ' << a.rejected << ' '
     << a.admitted << ' ' << a.max_flow << ' ' << a.makespan << '\n';
  os << "sums ";
  save_csum(os, a.flow);
  os << ' ';
  save_csum(os, a.weighted_flow);
  os << ' ';
  save_csum(os, a.frac);
  os << ' ';
  save_csum(os, a.weighted_frac);
  os << ' ';
  save_csum(os, a.shed_volume);
  os << '\n';
  return os.str();
}

}  // namespace

void StreamAccumulator::save(std::ostream& os) const {
  const std::string head = acc_head(*this);
  os << head << "acccsum " << util::fnv1a_64(head) << '\n';
  flow_digest.save(os);
  p99_marker.save(os);
}

void StreamAccumulator::load(std::istream& is) {
  StreamAccumulator tmp;
  expect_tag(is, "acc");
  is >> tmp.completed >> tmp.shed >> tmp.rejected >> tmp.admitted >>
      tmp.max_flow >> tmp.makespan;
  expect_tag(is, "sums");
  load_csum(is, tmp.flow);
  load_csum(is, tmp.weighted_flow);
  load_csum(is, tmp.frac);
  load_csum(is, tmp.weighted_frac);
  load_csum(is, tmp.shed_volume);
  TS_REQUIRE(static_cast<bool>(is), "accumulator load: truncated state");
  // Reject corrupt bytes before they become state: re-serialize what was
  // parsed and require the recorded checksum to reproduce (truncations die
  // above or on the missing tag; flipped digits re-serialize differently).
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == "acccsum",
             "accumulator load: missing checksum line (truncated state)");
  std::uint64_t csum = 0;
  is >> csum;
  TS_REQUIRE(static_cast<bool>(is), "accumulator load: truncated checksum");
  TS_REQUIRE(csum == util::fnv1a_64(acc_head(tmp)),
             "accumulator load: checksum mismatch (corrupt state)");
  tmp.flow_digest.load(is);
  tmp.p99_marker.load(is);
  *this = tmp;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void Metrics::reset(std::size_t job_count) {
  jobs_.assign(job_count, JobRecord{});
  for (std::size_t j = 0; j < job_count; ++j)
    jobs_[j].id = static_cast<JobId>(j);
  acc_ = StreamAccumulator();
}

void Metrics::enable_streaming(StreamAccumulator acc) {
  TS_REQUIRE(std::none_of(jobs_.begin(), jobs_.end(),
                          [](const JobRecord& r) { return r.finalized; }),
             "enable_streaming: window already has finalized jobs");
  mode_ = MetricsMode::kStreaming;
  acc_ = std::move(acc);
}

void Metrics::finalize_job(JobId j) {
  if (mode_ != MetricsMode::kStreaming) return;
  JobRecord& r = jobs_[uidx(j)];
  if (r.finalized) return;
  r.finalized = true;
  acc_.fold(r);
}

bool Metrics::all_completed() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const JobRecord& r) { return r.completed(); });
}

std::size_t Metrics::completed_count() const {
  if (mode_ == MetricsMode::kStreaming)
    return static_cast<std::size_t>(acc_.completed);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.completed(); }));
}

double Metrics::total_flow_time() const {
  if (mode_ == MetricsMode::kStreaming) return acc_.flow.value();
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(r.flow());
  return total.value();
}

double Metrics::mean_flow_time() const {
  const std::size_t n = completed_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return total_flow_time() / static_cast<double>(n);
}

std::size_t Metrics::shed_count() const {
  if (mode_ == MetricsMode::kStreaming)
    return static_cast<std::size_t>(acc_.shed);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.shed; }));
}

std::size_t Metrics::rejected_count() const {
  if (mode_ == MetricsMode::kStreaming)
    return static_cast<std::size_t>(acc_.rejected);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobRecord& r) { return r.rejected; }));
}

std::size_t Metrics::admitted_count() const {
  // Streaming: retired admissions live in the accumulator; still-live window
  // jobs are counted from their (unfinalized) records, matching full-mode
  // semantics at every instant.
  const auto live = static_cast<std::size_t>(std::count_if(
      jobs_.begin(), jobs_.end(), [this](const JobRecord& r) {
        if (mode_ == MetricsMode::kStreaming && r.finalized) return false;
        return r.admitted();
      }));
  if (mode_ == MetricsMode::kStreaming)
    return static_cast<std::size_t>(acc_.admitted) + live;
  return live;
}

double Metrics::shed_volume() const {
  if (mode_ == MetricsMode::kStreaming) return acc_.shed_volume.value();
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.shed || r.rejected) total.add(r.size);
  return total.value();
}

double Metrics::goodput() const {
  const std::size_t n = completed_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const double span = makespan();
  if (span <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(n) / span;
}

double Metrics::mean_flow_time_admitted() const {
  const std::size_t n = admitted_count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return total_flow_time() / static_cast<double>(n);
}

double Metrics::flow_percentile(double q) const {
  TS_REQUIRE(q >= 0.0 && q <= 1.0, "flow_percentile requires q in [0, 1]");
  if (mode_ == MetricsMode::kStreaming) return acc_.flow_digest.quantile(q);
  std::vector<double> flows;
  flows.reserve(jobs_.size());
  for (const auto& r : jobs_)
    if (r.completed()) flows.push_back(r.flow());
  if (flows.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(flows.begin(), flows.end());
  const double rank = std::ceil(q * static_cast<double>(flows.size()));
  const std::size_t i =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return flows[std::min(i, flows.size() - 1)];
}

double Metrics::total_fractional_flow_time() const {
  util::CompensatedSum total;
  if (mode_ == MetricsMode::kStreaming) {
    // Retired areas from the accumulator + partial accrual of live jobs,
    // folded in window-index order (deterministic).
    total.merge(acc_.frac);
    for (const auto& r : jobs_)
      if (!r.finalized) total.add(r.fractional_area);
    return total.value();
  }
  for (const auto& r : jobs_) total.add(r.fractional_area);
  return total.value();
}

double Metrics::total_weighted_flow_time() const {
  if (mode_ == MetricsMode::kStreaming) return acc_.weighted_flow.value();
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(r.weight * r.flow());
  return total.value();
}

double Metrics::total_weighted_fractional_flow_time() const {
  util::CompensatedSum total;
  if (mode_ == MetricsMode::kStreaming) {
    total.merge(acc_.weighted_frac);
    for (const auto& r : jobs_)
      if (!r.finalized) total.add(r.weight * r.fractional_area);
    return total.value();
  }
  for (const auto& r : jobs_) total.add(r.weight * r.fractional_area);
  return total.value();
}

double Metrics::max_flow_time() const {
  if (mode_ == MetricsMode::kStreaming) return acc_.max_flow;
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.flow());
  return mx;
}

double Metrics::lk_norm_flow_time(double k) const {
  TS_REQUIRE(k >= 1.0, "l_k norm requires k >= 1");
  TS_REQUIRE(mode_ == MetricsMode::kFull,
             "lk_norm_flow_time needs per-job flows (full mode only)");
  util::CompensatedSum total;
  for (const auto& r : jobs_)
    if (r.completed()) total.add(std::pow(r.flow(), k));
  return std::pow(total.value(), 1.0 / k);
}

double Metrics::makespan() const {
  if (mode_ == MetricsMode::kStreaming) return acc_.makespan;
  double mx = 0.0;
  for (const auto& r : jobs_)
    if (r.completed()) mx = std::max(mx, r.completion);
  return mx;
}

void Metrics::save(std::ostream& os) const {
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::setprecision(17);
  os << "metrics " << (mode_ == MetricsMode::kStreaming ? "streaming" : "full")
     << ' ' << jobs_.size() << '\n';
  if (mode_ == MetricsMode::kStreaming) acc_.save(os);
  for (const auto& r : jobs_) {
    os << "jr " << r.id << ' ' << r.release << ' ' << r.weight << ' '
       << r.size << ' ' << r.leaf << ' ' << r.completion << ' '
       << r.fractional_area << ' ' << (r.shed ? 1 : 0) << ' '
       << (r.rejected ? 1 : 0) << ' ' << (r.finalized ? 1 : 0) << ' '
       << r.node_completion.size();
    for (const Time t : r.node_completion) os << ' ' << t;
    os << '\n';
  }
  os.flags(flags);
  os.precision(prec);
}

void Metrics::load(std::istream& is) {
  expect_tag(is, "metrics");
  std::string mode;
  std::size_t n = 0;
  is >> mode >> n;
  TS_REQUIRE(is && (mode == "streaming" || mode == "full"),
             "metrics load: bad mode");
  TS_REQUIRE(jobs_.size() >= n,
             "metrics load: window smaller than serialized record count");
  mode_ = mode == "streaming" ? MetricsMode::kStreaming : MetricsMode::kFull;
  if (mode_ == MetricsMode::kStreaming) acc_.load(is);
  for (std::size_t j = 0; j < n; ++j) {
    expect_tag(is, "jr");
    JobRecord& r = jobs_[j];
    int shed = 0, rejected = 0, finalized = 0;
    std::size_t nc = 0;
    is >> r.id >> r.release >> r.weight >> r.size >> r.leaf >> r.completion >>
        r.fractional_area >> shed >> rejected >> finalized >> nc;
    TS_REQUIRE(is && r.id == static_cast<JobId>(j),
               "metrics load: record id out of order");
    r.shed = shed != 0;
    r.rejected = rejected != 0;
    r.finalized = finalized != 0;
    r.node_completion.assign(nc, 0.0);
    for (std::size_t i = 0; i < nc; ++i) is >> r.node_completion[i];
  }
  TS_REQUIRE(static_cast<bool>(is), "metrics load: truncated state");
}

}  // namespace treesched::sim
