// Calendar (bucketed) event queue for the simulator hot loop.
//
// The engine pops events in strict (t, seq) order; a comparison heap pays
// O(log n) per operation and scatters its storage. A calendar queue exploits
// what the simulation guarantees — every push carries a timestamp no earlier
// than the last popped event — to make push/pop O(1) amortized:
//
//  * Time is divided into fixed-width buckets; a ring of `nbuckets` vectors
//    covers the window [cur, cur + nbuckets) of bucket indices starting at
//    the bucket currently being drained.
//  * Pushes into the current bucket keep it a binary min-heap on (t, seq);
//    pushes into later ring buckets are plain appends (the bucket is heapified
//    once, when the drain frontier reaches it).
//  * Events past the ring's horizon land in an overflow min-heap and migrate
//    into the ring as the frontier advances. If the ring drains empty while
//    the overflow holds far-future events, the ring is re-based onto the
//    overflow minimum's bucket — safe precisely because no pending or future
//    event can precede the minimum pending event.
//
// Tie-order guarantee: events with equal t always share a bucket (same
// floor(t / width)), every bucket heap and the overflow heap compare by the
// full (t, seq) pair, and buckets are drained in ascending index order — so
// the pop sequence is the exact total order (t, seq), bit-identical to the
// std::priority_queue it replaces. sorted_events() exposes that order for
// snapshot serialization.
//
// The structure re-sizes itself (bucket count and width) from the observed
// event population; all re-size decisions are pure functions of the queue
// content, so runs stay deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// A scheduled engine event: completion check for `node`, valid only while
/// the node's version still matches.
struct SimEvent {
  Time t = 0.0;
  std::uint64_t seq = 0;
  NodeId node = kInvalidNode;
  std::uint64_t version = 0;
};

class EventQueue {
 public:
  EventQueue();

  void push(const SimEvent& ev);

  /// The minimum (t, seq) event, or nullptr when empty. May advance the
  /// drain frontier / migrate overflow internally (hence non-const).
  const SimEvent* peek();

  /// Removes and returns the minimum event. Requires !empty().
  SimEvent pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Every pending event in ascending (t, seq) order — the exact pop order —
  /// for snapshot serialization.
  std::vector<SimEvent> sorted_events() const;

 private:
  static bool event_less(const SimEvent& a, const SimEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  // std::*_heap comparators build max-heaps; invert to get min-heaps.
  static bool heap_cmp(const SimEvent& a, const SimEvent& b) {
    return event_less(b, a);
  }

  std::vector<SimEvent>& bucket(std::uint64_t abs_index) {
    return buckets_[abs_index & (buckets_.size() - 1)];
  }
  double horizon() const {
    return width_ * static_cast<double>(cur_ + buckets_.size());
  }
  std::uint64_t bucket_index(Time t) const;

  void push_into_ring(const SimEvent& ev);
  void migrate_overflow();
  /// Moves cur_ to the next non-empty ring bucket (or serves overflow when
  /// the ring is empty) and leaves the current bucket heapified.
  void settle();
  void maybe_resize();
  void rebuild(std::size_t nbuckets, double width);

  std::vector<std::vector<SimEvent>> buckets_;  ///< ring; size is a power of 2
  std::vector<SimEvent> overflow_;              ///< min-heap past the horizon
  std::uint64_t cur_ = 0;       ///< absolute index of the drain-frontier bucket
  double width_ = 1.0;          ///< bucket width in simulated time
  std::size_t size_ = 0;        ///< total pending events
  std::size_t ring_count_ = 0;  ///< pending events inside the ring
  bool cur_heaped_ = true;      ///< bucket(cur_) is heap-ordered
  std::size_t grow_at_ = 0;     ///< rebuild thresholds on size_
  std::size_t shrink_at_ = 0;
};

}  // namespace treesched::sim
