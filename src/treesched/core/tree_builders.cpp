#include "treesched/core/tree_builders.hpp"

#include <algorithm>

#include "treesched/util/assert.hpp"

namespace treesched {

NodeId TreeAssembler::add_root() {
  TS_REQUIRE(parent_.empty(), "root must be the first node");
  parent_.push_back(kInvalidNode);
  kind_.push_back(NodeKind::kRoot);
  return 0;
}

NodeId TreeAssembler::add_router(NodeId parent) {
  TS_REQUIRE(parent >= 0 && parent < size(), "parent out of range");
  parent_.push_back(parent);
  kind_.push_back(NodeKind::kRouter);
  return size() - 1;
}

NodeId TreeAssembler::add_machine(NodeId parent) {
  TS_REQUIRE(parent >= 0 && parent < size(), "parent out of range");
  parent_.push_back(parent);
  kind_.push_back(NodeKind::kMachine);
  return size() - 1;
}

Tree TreeAssembler::finish() && {
  return Tree::build(std::move(parent_), std::move(kind_));
}

namespace builders {

Tree star_of_paths(int branches, int routers_per_branch) {
  TS_REQUIRE(branches >= 1, "need at least one branch");
  TS_REQUIRE(routers_per_branch >= 1, "need at least one router per branch");
  TreeAssembler a;
  const NodeId root = a.add_root();
  for (int b = 0; b < branches; ++b) {
    NodeId cur = a.add_router(root);
    for (int i = 1; i < routers_per_branch; ++i) cur = a.add_router(cur);
    a.add_machine(cur);
  }
  return std::move(a).finish();
}

Tree caterpillar(int branches, int spine_len, int leaves_per_node) {
  TS_REQUIRE(branches >= 1 && spine_len >= 1 && leaves_per_node >= 1,
             "caterpillar parameters must be positive");
  TreeAssembler a;
  const NodeId root = a.add_root();
  for (int b = 0; b < branches; ++b) {
    NodeId cur = a.add_router(root);
    for (int i = 0; i < spine_len; ++i) {
      for (int l = 0; l < leaves_per_node; ++l) a.add_machine(cur);
      if (i + 1 < spine_len) cur = a.add_router(cur);
    }
  }
  return std::move(a).finish();
}

Tree fat_tree(int arity, int router_depth, int machines_per_rack) {
  TS_REQUIRE(arity >= 1 && router_depth >= 1 && machines_per_rack >= 1,
             "fat_tree parameters must be positive");
  TreeAssembler a;
  const NodeId root = a.add_root();
  std::vector<NodeId> level{root};
  for (int d = 0; d < router_depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId p : level)
      for (int c = 0; c < arity; ++c) next.push_back(a.add_router(p));
    level = std::move(next);
  }
  for (NodeId rack : level)
    for (int m = 0; m < machines_per_rack; ++m) a.add_machine(rack);
  return std::move(a).finish();
}

Tree random_tree(util::Rng& rng, int n_routers, int n_leaves, int max_depth) {
  TS_REQUIRE(n_routers >= 1 && n_leaves >= 1,
             "random_tree needs routers and leaves");
  TreeAssembler a;
  const NodeId root = a.add_root();
  std::vector<NodeId> routers;
  std::vector<int> depth_of;  // parallel to routers
  routers.push_back(a.add_router(root));
  depth_of.push_back(1);
  for (int i = 1; i < n_routers; ++i) {
    // Random recursive attachment; optionally bounded depth. Attaching to
    // the root is allowed so the tree can have several subtrees.
    std::vector<std::size_t> eligible;
    for (std::size_t r = 0; r < routers.size(); ++r)
      if (max_depth <= 0 || depth_of[r] < max_depth) eligible.push_back(r);
    if (eligible.empty()) break;
    const bool at_root = rng.bernoulli(0.15);
    if (at_root) {
      routers.push_back(a.add_router(root));
      depth_of.push_back(1);
    } else {
      const std::size_t pick = eligible[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1))];
      routers.push_back(a.add_router(routers[pick]));
      depth_of.push_back(depth_of[pick] + 1);
    }
  }
  std::vector<int> machines_below(routers.size(), 0);
  for (int l = 0; l < n_leaves; ++l) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(routers.size()) - 1));
    a.add_machine(routers[pick]);
    ++machines_below[pick];
  }
  // A router validates only if it has some child; conservatively give every
  // machine-less router one machine (a router child may also exist, but one
  // extra machine never invalidates the topology).
  for (std::size_t r = 0; r < routers.size(); ++r)
    if (machines_below[r] == 0) a.add_machine(routers[r]);
  return std::move(a).finish();
}

Tree broomstick(const std::vector<int>& spine_len,
                const std::vector<std::vector<int>>& leaf_depths) {
  TS_REQUIRE(!spine_len.empty(), "broomstick needs at least one broom");
  TS_REQUIRE(spine_len.size() == leaf_depths.size(),
             "spine_len/leaf_depths mismatch");
  TreeAssembler a;
  const NodeId root = a.add_root();
  for (std::size_t b = 0; b < spine_len.size(); ++b) {
    TS_REQUIRE(spine_len[b] >= 1, "spine must have at least one router");
    std::vector<NodeId> spine;
    NodeId cur = a.add_router(root);
    spine.push_back(cur);
    for (int i = 1; i < spine_len[b]; ++i) {
      cur = a.add_router(cur);
      spine.push_back(cur);
    }
    TS_REQUIRE(!leaf_depths[b].empty(), "each broom needs a machine");
    for (int pos : leaf_depths[b]) {
      TS_REQUIRE(pos >= 1 && pos <= spine_len[b],
                 "leaf position outside the spine");
      a.add_machine(spine[uidx(pos - 1)]);
    }
  }
  return std::move(a).finish();
}

Tree figure1_tree() {
  TreeAssembler a;
  const NodeId root = a.add_root();
  // Left subtree: two router levels, three machines.
  const NodeId l1 = a.add_router(root);
  const NodeId l2a = a.add_router(l1);
  const NodeId l2b = a.add_router(l1);
  a.add_machine(l2a);
  a.add_machine(l2a);
  a.add_machine(l2b);
  // Middle subtree: one router with two machines.
  const NodeId m1 = a.add_router(root);
  a.add_machine(m1);
  a.add_machine(m1);
  // Right subtree: a deeper chain with machines at two depths.
  const NodeId r1 = a.add_router(root);
  const NodeId r2 = a.add_router(r1);
  a.add_machine(r2);
  const NodeId r3 = a.add_router(r2);
  a.add_machine(r3);
  a.add_machine(r3);
  return std::move(a).finish();
}

}  // namespace builders
}  // namespace treesched
