#include "treesched/core/instance.hpp"

#include <algorithm>

#include "treesched/util/assert.hpp"
#include "treesched/util/class_rounding.hpp"

namespace treesched {

Instance::Instance(std::shared_ptr<const Tree> tree, std::vector<Job> jobs,
                   EndpointModel model)
    : tree_(std::move(tree)), jobs_(std::move(jobs)), model_(model) {
  TS_REQUIRE(tree_ != nullptr, "instance needs a tree");
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     if (a.release != b.release) return a.release < b.release;
                     return a.id < b.id;
                   });
  validate();
  position_of_id_.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i)
    position_of_id_[uidx(jobs_[i].id)] = i;
}

Instance::Instance(Tree tree, std::vector<Job> jobs, EndpointModel model)
    : Instance(std::make_shared<const Tree>(std::move(tree)), std::move(jobs),
               model) {}

void Instance::validate() const {
  std::vector<bool> seen(jobs_.size(), false);
  for (const Job& j : jobs_) {
    TS_REQUIRE(j.id >= 0 && uidx(j.id) < jobs_.size(),
               "job ids must be dense 0..n-1");
    TS_REQUIRE(!seen[uidx(j.id)], "duplicate job id");
    seen[uidx(j.id)] = true;
    TS_REQUIRE(j.release >= 0.0, "release times must be non-negative");
    TS_REQUIRE(j.size > 0.0, "job size must be positive");
    TS_REQUIRE(j.weight > 0.0, "job weight must be positive");
    if (j.source != kInvalidNode)
      TS_REQUIRE(j.source >= 0 && j.source < tree_->node_count(),
                 "job source node out of range");
    if (model_ == EndpointModel::kUnrelated) {
      TS_REQUIRE(j.leaf_sizes.size() == tree_->leaves().size(),
                 "unrelated model: leaf_sizes must cover every leaf");
      for (double p : j.leaf_sizes)
        TS_REQUIRE(p > 0.0, "leaf processing times must be positive");
    } else {
      TS_REQUIRE(j.leaf_sizes.empty(),
                 "identical model: leaf_sizes must be empty");
    }
  }
}

double Instance::processing_time(JobId j, NodeId v) const {
  // In the paper's base model the root performs no processing (paths never
  // include it). The arbitrary-source extension routes *through* the root,
  // which then behaves like an identical router: requirement p_j.
  const Job& jb = job(j);  // by id, not by release position
  if (tree_->is_root(v)) return jb.size;
  if (tree_->is_leaf(v) && model_ == EndpointModel::kUnrelated)
    return jb.leaf_sizes[uidx(tree_->leaf_index(v))];
  return jb.size;
}

double Instance::path_processing_time(JobId j, NodeId leaf) const {
  double total = 0.0;
  for (NodeId v : tree_->path_to(leaf)) total += processing_time(j, v);
  return total;
}

double Instance::total_size() const {
  double total = 0.0;
  for (const Job& j : jobs_) total += j.size;
  return total;
}

Instance Instance::rounded_to_classes(double eps) const {
  std::vector<Job> rounded = jobs_;
  for (Job& j : rounded) {
    j.size = util::round_up_to_class(j.size, eps);
    for (double& p : j.leaf_sizes) p = util::round_up_to_class(p, eps);
  }
  return Instance(tree_, std::move(rounded), model_);
}

}  // namespace treesched
