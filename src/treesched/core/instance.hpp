// A problem instance: tree + job sequence + endpoint model.
#pragma once

#include <memory>
#include <vector>

#include "treesched/core/job.hpp"
#include "treesched/core/tree.hpp"
#include "treesched/core/types.hpp"

namespace treesched {

/// Immutable instance of the tree-network scheduling problem. Owns the tree
/// (shared, so derived instances — e.g. the broomstick image — can reference
/// their own topology cheaply) and the jobs sorted by release time.
class Instance {
 public:
  /// Validates and normalizes: jobs are sorted by (release, id); ids must be
  /// the dense range 0..n-1; sizes must be positive; in the unrelated model
  /// every job needs a leaf_sizes entry per leaf.
  Instance(std::shared_ptr<const Tree> tree, std::vector<Job> jobs,
           EndpointModel model);

  /// Convenience overload taking the tree by value.
  Instance(Tree tree, std::vector<Job> jobs, EndpointModel model);

  const Tree& tree() const { return *tree_; }
  std::shared_ptr<const Tree> tree_ptr() const { return tree_; }
  /// Jobs in release order (not necessarily id order).
  const std::vector<Job>& jobs() const { return jobs_; }
  /// Job lookup *by id*, regardless of release order.
  const Job& job(JobId j) const { return jobs_[position_of_id_[uidx(j)]]; }
  JobId job_count() const { return static_cast<JobId>(jobs_.size()); }
  EndpointModel model() const { return model_; }

  /// Processing requirement p_{j,v} of job j on node v (root excluded).
  double processing_time(JobId j, NodeId v) const;

  /// P_{v,j} of the paper: total processing of job j on the path R(v)..v.
  /// Requires v to be a leaf. A lower bound on j's flow time if assigned to v.
  double path_processing_time(JobId j, NodeId leaf) const;

  /// Sum of sizes of all jobs (router volume).
  double total_size() const;

  /// Derives an instance with every size rounded up to a power of (1+eps)
  /// (Section 2's class-rounding assumption).
  Instance rounded_to_classes(double eps) const;

 private:
  void validate() const;

  std::shared_ptr<const Tree> tree_;
  std::vector<Job> jobs_;
  std::vector<std::size_t> position_of_id_;  ///< id -> index in jobs_
  EndpointModel model_;
};

}  // namespace treesched
