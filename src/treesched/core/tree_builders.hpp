// Ready-made tree topologies used by tests, examples and benchmarks.
//
// Every builder returns a validated Tree in which machines hang below at
// least one router layer (the model forbids machines adjacent to the root).
#pragma once

#include <vector>

#include "treesched/core/tree.hpp"
#include "treesched/util/rng.hpp"

namespace treesched {

/// Incremental tree assembly. Add the root first, then routers/machines
/// below existing nodes; finish() validates and returns the Tree.
class TreeAssembler {
 public:
  NodeId add_root();
  NodeId add_router(NodeId parent);
  NodeId add_machine(NodeId parent);
  /// Number of nodes added so far.
  NodeId size() const { return static_cast<NodeId>(parent_.size()); }
  Tree finish() &&;

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeKind> kind_;
};

namespace builders {

/// `branches` root-children, each a chain of `routers_per_branch` routers
/// ending in one machine. branches >= 1, routers_per_branch >= 1.
/// With branches = 1 this is the "spine" used to stress depth.
Tree star_of_paths(int branches, int routers_per_branch);

/// `branches` root-children; each heads a router spine of length `spine_len`
/// with `leaves_per_node` machines hanging off every spine router.
Tree caterpillar(int branches, int spine_len, int leaves_per_node);

/// Complete `arity`-ary router tree of `router_depth` levels below the root;
/// every bottom router carries `machines_per_rack` machines. Models the
/// data-center fat-tree topologies the paper cites ([1, 15]).
Tree fat_tree(int arity, int router_depth, int machines_per_rack);

/// Random topology: a random recursive tree over `n_routers` routers (root
/// children chosen among them), then `n_leaves` machines attached to random
/// routers; childless routers receive one machine so the tree validates.
Tree random_tree(util::Rng& rng, int n_routers, int n_leaves,
                 int max_depth = 0);

/// A broomstick with the given number of brooms; broom b has a spine of
/// `spine_len[b]` routers and machines attached below the spine routers at
/// the positions listed in `leaf_depths[b]` (1-based spine positions).
Tree broomstick(const std::vector<int>& spine_len,
                const std::vector<std::vector<int>>& leaf_depths);

/// The schematic topology of Figure 1: a root with three subtrees of
/// different shapes and depths (representative rendering of the paper's
/// illustration).
Tree figure1_tree();

}  // namespace builders
}  // namespace treesched
