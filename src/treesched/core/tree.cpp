#include "treesched/core/tree.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "treesched/util/assert.hpp"

namespace treesched {

Tree Tree::build(std::vector<NodeId> parent, std::vector<NodeKind> kind) {
  TS_REQUIRE(!parent.empty(), "tree must have nodes");
  TS_REQUIRE(parent.size() == kind.size(), "parent/kind size mismatch");
  const NodeId n = static_cast<NodeId>(parent.size());

  Tree t;
  t.parent_ = std::move(parent);
  t.kind_ = std::move(kind);
  t.children_.assign(uidx(n), {});
  t.depth_.assign(uidx(n), -1);
  t.height_.assign(uidx(n), 0);
  t.root_child_.assign(uidx(n), kInvalidNode);
  t.leaf_index_.assign(uidx(n), -1);
  t.tin_.assign(uidx(n), -1);
  t.tout_.assign(uidx(n), -1);

  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = t.parent_[uidx(v)];
    if (p == kInvalidNode) {
      TS_REQUIRE(t.root_ == kInvalidNode, "multiple roots");
      TS_REQUIRE(t.kind_[uidx(v)] == NodeKind::kRoot, "root must have kind kRoot");
      t.root_ = v;
    } else {
      TS_REQUIRE(p >= 0 && p < n && p != v, "parent id out of range");
      TS_REQUIRE(t.kind_[uidx(v)] != NodeKind::kRoot, "non-root node with kind kRoot");
      t.children_[uidx(p)].push_back(v);
    }
  }
  TS_REQUIRE(t.root_ != kInvalidNode, "tree has no root");

  // Iterative DFS: assigns depth, R(v), DFS intervals; detects disconnected
  // or cyclic parent structure (unvisited nodes).
  int timer = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(t.root_, 0);
  t.depth_[uidx(t.root_)] = 0;
  t.tin_[uidx(t.root_)] = timer++;
  while (!stack.empty()) {
    auto& [v, ci] = stack.back();
    if (ci == t.children_[uidx(v)].size()) {
      t.tout_[uidx(v)] = timer;
      for (NodeId c : t.children_[uidx(v)])
        t.height_[uidx(v)] = std::max(t.height_[uidx(v)], t.height_[uidx(c)] + 1);
      stack.pop_back();
      continue;
    }
    const NodeId c = t.children_[uidx(v)][ci++];
    t.depth_[uidx(c)] = t.depth_[uidx(v)] + 1;
    t.root_child_[uidx(c)] = (v == t.root_) ? c : t.root_child_[uidx(v)];
    t.tin_[uidx(c)] = timer++;
    stack.emplace_back(c, 0);
  }
  for (NodeId v = 0; v < n; ++v)
    TS_REQUIRE(t.depth_[uidx(v)] >= 0, "node unreachable from root (cycle or forest)");

  // Role constraints.
  for (NodeId v = 0; v < n; ++v) {
    switch (t.kind_[uidx(v)]) {
      case NodeKind::kRoot:
        TS_REQUIRE(!t.children_[uidx(v)].empty(), "root must have children");
        break;
      case NodeKind::kRouter:
        TS_REQUIRE(!t.children_[uidx(v)].empty(),
                   "router " + std::to_string(v) + " has no children");
        break;
      case NodeKind::kMachine:
        TS_REQUIRE(t.children_[uidx(v)].empty(),
                   "machine " + std::to_string(v) + " has children");
        TS_REQUIRE(t.parent_[uidx(v)] != t.root_,
                   "machine " + std::to_string(v) + " adjacent to the root");
        break;
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (t.kind_[uidx(v)] == NodeKind::kMachine) {
      t.leaf_index_[uidx(v)] = static_cast<int>(t.leaves_.size());
      t.leaves_.push_back(v);
    }
    if (t.parent_[uidx(v)] == t.root_) t.root_children_.push_back(v);
  }
  TS_REQUIRE(!t.leaves_.empty(), "tree must have at least one machine");

  // Per-leaf processing paths (R(v) .. v).
  t.leaf_paths_.resize(t.leaves_.size());
  for (std::size_t i = 0; i < t.leaves_.size(); ++i) {
    NodeId v = t.leaves_[i];
    std::vector<NodeId> path;
    for (NodeId u = v; u != t.root_; u = t.parent_[uidx(u)]) path.push_back(u);
    std::reverse(path.begin(), path.end());
    t.leaf_paths_[i] = std::move(path);
  }

  // Leaves in DFS order for subtree queries.
  t.leaf_dfs_order_ = t.leaves_;
  std::sort(t.leaf_dfs_order_.begin(), t.leaf_dfs_order_.end(),
            [&t](NodeId a, NodeId b) { return t.tin_[uidx(a)] < t.tin_[uidx(b)]; });

  return t;
}

int Tree::d(NodeId v) const {
  TS_REQUIRE(v != root_, "d_v undefined for the root");
  return depth_[uidx(v)];
}

NodeId Tree::root_child_of(NodeId v) const {
  TS_REQUIRE(v != root_, "R(v) undefined for the root");
  return root_child_[uidx(v)];
}

int Tree::leaf_index(NodeId v) const {
  TS_REQUIRE(is_leaf(v), "leaf_index on non-leaf");
  return leaf_index_[uidx(v)];
}

std::vector<NodeId> Tree::leaves_under(NodeId v) const {
  auto lo = std::lower_bound(
      leaf_dfs_order_.begin(), leaf_dfs_order_.end(), tin_[uidx(v)],
      [this](NodeId leaf, int val) { return tin_[uidx(leaf)] < val; });
  std::vector<NodeId> out;
  for (auto it = lo; it != leaf_dfs_order_.end() && tin_[uidx(*it)] < tout_[uidx(v)]; ++it)
    out.push_back(*it);
  return out;
}

const std::vector<NodeId>& Tree::path_to(NodeId leaf) const {
  return leaf_paths_[uidx(leaf_index(leaf))];
}

NodeId Tree::lca(NodeId u, NodeId v) const {
  while (depth_[uidx(u)] > depth_[uidx(v)]) u = parent_[uidx(u)];
  while (depth_[uidx(v)] > depth_[uidx(u)]) v = parent_[uidx(v)];
  while (u != v) {
    u = parent_[uidx(u)];
    v = parent_[uidx(v)];
  }
  return u;
}

std::vector<NodeId> Tree::path_between(NodeId source, NodeId leaf) const {
  TS_REQUIRE(is_leaf(leaf), "path_between targets a machine");
  TS_REQUIRE(source >= 0 && source < node_count(), "source out of range");
  if (source == root()) {
    const auto& p = path_to(leaf);
    return {p.begin(), p.end()};
  }
  const NodeId meet = lca(source, leaf);
  std::vector<NodeId> path;
  // Upward leg: every node entered while climbing (source excluded).
  for (NodeId u = source; u != meet; u = parent_[uidx(u)])
    path.push_back(parent_[uidx(u)]);
  // Downward leg: nodes from below the meet down to the leaf.
  std::vector<NodeId> down;
  for (NodeId v = leaf; v != meet; v = parent_[uidx(v)]) down.push_back(v);
  path.insert(path.end(), down.rbegin(), down.rend());
  if (path.empty()) path.push_back(leaf);  // source == leaf
  return path;
}

bool Tree::is_ancestor_or_self(NodeId ancestor, NodeId descendant) const {
  return tin_[uidx(ancestor)] <= tin_[uidx(descendant)] && tin_[uidx(descendant)] < tout_[uidx(ancestor)];
}

int Tree::max_leaf_depth() const {
  int d_max = 0;
  for (NodeId v : leaves_) d_max = std::max(d_max, depth_[uidx(v)]);
  return d_max;
}

std::string Tree::to_ascii() const {
  std::ostringstream os;
  std::function<void(NodeId, std::string, bool)> rec =
      [&](NodeId v, std::string prefix, bool last) {
        os << prefix;
        if (v != root_) os << (last ? "`-- " : "|-- ");
        switch (kind_[uidx(v)]) {
          case NodeKind::kRoot: os << "root"; break;
          case NodeKind::kRouter: os << "router " << v; break;
          case NodeKind::kMachine: os << "machine " << v; break;
        }
        os << '\n';
        std::string child_prefix =
            prefix + (v == root_ ? "" : (last ? "    " : "|   "));
        for (std::size_t i = 0; i < children_[uidx(v)].size(); ++i)
          rec(children_[uidx(v)][i], child_prefix, i + 1 == children_[uidx(v)].size());
      };
  rec(root_, "", true);
  return os.str();
}

}  // namespace treesched
