// Rooted tree network topology (Section 2 of the paper).
//
// The root is the job distribution center and performs no processing.
// Interior nodes are routers; leaves are machines. A job assigned to leaf v
// must be processed, in order, on every node of the path R(v) .. v, where
// R(v) is v's ancestor adjacent to the root.
#pragma once

#include <string>
#include <vector>

#include "treesched/core/types.hpp"

namespace treesched {

/// Immutable rooted tree. Construct via Tree::build (or the helpers in
/// tree_builders.hpp); construction validates the scheduling preconditions:
///  - exactly one root (parent == kInvalidNode) of kind kRoot,
///  - parent array is acyclic and connected,
///  - machines (leaves) have no children; routers have at least one child,
///  - the root has at least one child and no machine is adjacent to the root.
class Tree {
 public:
  /// Builds and validates a tree. parent[i] is the parent of node i
  /// (kInvalidNode for the root); kind[i] is the node's role.
  /// Throws std::invalid_argument on any violation.
  static Tree build(std::vector<NodeId> parent, std::vector<NodeKind> kind);

  /// Total number of nodes, root included.
  NodeId node_count() const { return static_cast<NodeId>(parent_.size()); }

  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parent_[uidx(v)]; }
  const std::vector<NodeId>& children(NodeId v) const {
    return children_[uidx(v)];
  }
  NodeKind kind(NodeId v) const { return kind_[uidx(v)]; }
  bool is_leaf(NodeId v) const { return kind_[uidx(v)] == NodeKind::kMachine; }
  bool is_router(NodeId v) const { return kind_[uidx(v)] == NodeKind::kRouter; }
  bool is_root(NodeId v) const { return v == root_; }

  /// Depth of v: number of edges from the root. The root has depth 0.
  /// For non-root v this equals d_v of the paper — the number of processing
  /// nodes on the path from R(v) to v inclusive.
  int depth(NodeId v) const { return depth_[uidx(v)]; }

  /// d_v of the paper (depth, but spelled like the paper for call sites that
  /// mirror formulas). Requires v != root.
  int d(NodeId v) const;

  /// R(v): the ancestor of v adjacent to the root (v itself if v is a root
  /// child). Requires v != root.
  NodeId root_child_of(NodeId v) const;

  /// All machines (leaves), in node-id order.
  const std::vector<NodeId>& leaves() const { return leaves_; }

  /// All children of the root (the set R of the paper), in node-id order.
  const std::vector<NodeId>& root_children() const { return root_children_; }

  /// Index of leaf v within leaves() — the dense key used by per-leaf data
  /// such as unrelated processing times. Requires is_leaf(v).
  int leaf_index(NodeId v) const;

  /// Leaves in the subtree rooted at v — L(v) of the paper. Contiguous view
  /// thanks to DFS ordering; cheap to call.
  std::vector<NodeId> leaves_under(NodeId v) const;

  /// The processing path of leaf v: nodes from R(v) down to v inclusive.
  /// Precomputed; requires is_leaf(v).
  const std::vector<NodeId>& path_to(NodeId leaf) const;

  /// Lowest common ancestor of u and v.
  NodeId lca(NodeId u, NodeId v) const;

  /// The processing path of a job born at `source` and assigned to `leaf`
  /// (the paper's future-work generalization): every node the data *enters*
  /// on the unique source->leaf tree path — source excluded, leaf included.
  /// For source == root this equals path_to(leaf); for source == leaf the
  /// path is just {leaf} (the job still needs its machine processing).
  /// Note the path may pass through the root, which then acts as a router.
  std::vector<NodeId> path_between(NodeId source, NodeId leaf) const;

  /// True if ancestor lies on the root-to-descendant path (inclusive).
  bool is_ancestor_or_self(NodeId ancestor, NodeId descendant) const;

  /// Longest edge-distance from v down to any leaf in its subtree.
  int height_below(NodeId v) const { return height_[uidx(v)]; }

  /// Maximum leaf depth in the whole tree.
  int max_leaf_depth() const;

  /// Multi-line ASCII rendering of the topology (for examples and docs).
  std::string to_ascii() const;

 private:
  Tree() = default;

  std::vector<NodeId> parent_;
  std::vector<NodeKind> kind_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int> depth_;
  std::vector<int> height_;
  std::vector<NodeId> root_child_;   // R(v); kInvalidNode for the root
  std::vector<NodeId> leaves_;
  std::vector<NodeId> root_children_;
  std::vector<int> leaf_index_;      // dense index among leaves, -1 otherwise
  std::vector<std::vector<NodeId>> leaf_paths_;  // by leaf_index
  std::vector<int> tin_, tout_;      // DFS intervals for ancestor queries
  std::vector<NodeId> leaf_dfs_order_;  // leaves sorted by tin
  std::vector<int> leaf_dfs_pos_;       // position of each node's first/last leaf
  NodeId root_ = kInvalidNode;
};

}  // namespace treesched
