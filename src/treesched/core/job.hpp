// Job description (Section 2 of the paper).
#pragma once

#include <vector>

#include "treesched/core/types.hpp"

namespace treesched {

/// One job J_j. `size` is the router processing requirement p_j (the data
/// volume forwarded hop by hop). In the identical-endpoint model the leaf
/// processing time is also `size`; in the unrelated model `leaf_sizes[i]`
/// gives p_{j,v} for the leaf with leaf_index i (and must cover every leaf).
///
/// `weight` extends the paper's model to weighted flow time (all the
/// paper's results are for weight 1); `source` extends it to jobs created
/// at arbitrary nodes (the paper's "future work" generalization) —
/// kInvalidNode means the root, the paper's base model.
struct Job {
  JobId id = kInvalidJob;
  Time release = 0.0;
  double size = 1.0;
  double weight = 1.0;
  NodeId source = kInvalidNode;    ///< kInvalidNode = the root
  std::vector<double> leaf_sizes;  ///< empty in the identical model

  Job() = default;
  Job(JobId id_, Time release_, double size_)
      : id(id_), release(release_), size(size_) {}
  Job(JobId id_, Time release_, double size_, std::vector<double> leaf_sizes_)
      : id(id_), release(release_), size(size_),
        leaf_sizes(std::move(leaf_sizes_)) {}

  /// Fluent setters for the extension fields (avoid constructor overloads
  /// that would be ambiguous with the leaf-size form).
  Job& with_weight(double w) {
    weight = w;
    return *this;
  }
  Job& with_source(NodeId s) {
    source = s;
    return *this;
  }
};

}  // namespace treesched
