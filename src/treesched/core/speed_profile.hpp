// Per-node speed (resource) augmentation profiles.
//
// The paper's analysis gives different speed to root-adjacent nodes than to
// the rest of the tree (Sections 3.3–3.6); benchmarks also sweep uniform
// speeds. A SpeedProfile is just a validated per-node multiplier vector.
#pragma once

#include <vector>

#include "treesched/core/tree.hpp"
#include "treesched/core/types.hpp"

namespace treesched {

/// Per-node processing speeds. A node with speed s completes s units of work
/// per unit of time. The root's entry is unused (the root never processes).
class SpeedProfile {
 public:
  /// Every node at the same speed s > 0.
  static SpeedProfile uniform(const Tree& tree, double s);

  /// Root-adjacent nodes at `root_child_speed`, all other processing nodes at
  /// `other_speed`.
  static SpeedProfile layered(const Tree& tree, double root_child_speed,
                              double other_speed);

  /// The profile of Theorem 5 (identical endpoints on broomsticks):
  /// (1+eps) on root children, (1+eps)^2 elsewhere.
  static SpeedProfile paper_identical(const Tree& tree, double eps);

  /// The profile of Theorem 6 (unrelated endpoints on broomsticks):
  /// 2(1+eps) on root children, 2(1+eps)^2 elsewhere.
  static SpeedProfile paper_unrelated(const Tree& tree, double eps);

  /// Explicit per-node speeds (validated: positive on all non-root nodes).
  SpeedProfile(const Tree& tree, std::vector<double> speeds);

  double speed(NodeId v) const { return speeds_[uidx(v)]; }
  const std::vector<double>& speeds() const { return speeds_; }

  /// Returns a copy with every speed multiplied by factor > 0.
  SpeedProfile scaled(double factor) const;

 private:
  std::vector<double> speeds_;
};

}  // namespace treesched
