// Fundamental identifier and time types shared by the whole library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace treesched {

/// Index of a node within a Tree (0-based, root included).
using NodeId = std::int32_t;

/// Index of a job within an Instance (0-based, in release order).
using JobId = std::int32_t;

/// Simulation time / work volume. Continuous; all comparisons go through
/// util::approx_* helpers.
using Time = double;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr JobId kInvalidJob = -1;

/// Container-index cast for signed ids. NodeId/JobId are signed so the
/// kInvalid* sentinels exist, but containers are size_t-indexed; uidx makes
/// the (validated-non-negative) conversion explicit under -Wsign-conversion.
template <typename T>
constexpr std::size_t uidx(T id) noexcept {
  // treesched-lint: allow(inv-raw-id-cast): uidx() is the designated funnel
  // this rule routes every other id cast through.
  return static_cast<std::size_t>(id);
}

/// Role of a node in the tree network (Section 2 of the paper).
enum class NodeKind : std::uint8_t {
  kRoot,     ///< job distribution center; performs no processing
  kRouter,   ///< interior node; forwards (processes) job data
  kMachine,  ///< leaf node; executes the job
};

/// Which machine model governs the leaves (routers are always identical).
enum class EndpointModel : std::uint8_t {
  kIdentical,  ///< leaf processing time equals the router size p_j
  kUnrelated,  ///< leaf processing time p_{j,v} arbitrary per (job, leaf)
};

}  // namespace treesched
