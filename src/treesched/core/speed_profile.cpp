#include "treesched/core/speed_profile.hpp"

#include "treesched/util/assert.hpp"

namespace treesched {

SpeedProfile::SpeedProfile(const Tree& tree, std::vector<double> speeds)
    : speeds_(std::move(speeds)) {
  TS_REQUIRE(speeds_.size() == uidx(tree.node_count()),
             "speed vector must cover every node");
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v)) continue;
    TS_REQUIRE(speeds_[uidx(v)] > 0.0, "node speeds must be positive");
  }
}

SpeedProfile SpeedProfile::uniform(const Tree& tree, double s) {
  TS_REQUIRE(s > 0.0, "speed must be positive");
  return SpeedProfile(tree, std::vector<double>(uidx(tree.node_count()), s));
}

SpeedProfile SpeedProfile::layered(const Tree& tree, double root_child_speed,
                                   double other_speed) {
  TS_REQUIRE(root_child_speed > 0.0 && other_speed > 0.0,
             "speeds must be positive");
  std::vector<double> s(uidx(tree.node_count()), other_speed);
  s[uidx(tree.root())] = 0.0;  // unused
  for (NodeId v : tree.root_children()) s[uidx(v)] = root_child_speed;
  return SpeedProfile(tree, std::move(s));
}

SpeedProfile SpeedProfile::paper_identical(const Tree& tree, double eps) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  return layered(tree, 1.0 + eps, (1.0 + eps) * (1.0 + eps));
}

SpeedProfile SpeedProfile::paper_unrelated(const Tree& tree, double eps) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  return layered(tree, 2.0 * (1.0 + eps), 2.0 * (1.0 + eps) * (1.0 + eps));
}

SpeedProfile SpeedProfile::scaled(double factor) const {
  TS_REQUIRE(factor > 0.0, "scale factor must be positive");
  SpeedProfile out = *this;
  for (double& s : out.speeds_) s *= factor;
  return out;
}

}  // namespace treesched
