#include "treesched/exec/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "treesched/algo/policies.hpp"
#include "treesched/exec/parallel.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/experiments/harness.hpp"
#include "treesched/fault/model.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/stats/bootstrap.hpp"
#include "treesched/stats/summary.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/log.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/util/stopwatch.hpp"
#include "treesched/util/table.hpp"
#include "treesched/workload/generator.hpp"
#include "treesched/workload/trace_io.hpp"

namespace treesched::exec {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON numbers: NaN/inf have no JSON representation, so completed-job
/// averages of an empty set (fully shed cells) serialize as null.
std::string json_num(double v) {
  return std::isfinite(v) ? fmt(v) : std::string("null");
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

struct Grid {
  SweepSpec spec;  // trees / eps resolved
  std::vector<std::shared_ptr<const Tree>> trees;

  std::size_t fault_count() const {
    return spec.fault_rates.empty() ? 1 : spec.fault_rates.size();
  }
  std::size_t shed_count() const {
    return spec.shed_policies.empty() ? 1 : spec.shed_policies.size();
  }

  /// The resolved shed configuration of task cell `shed_i` (disabled when
  /// the dimension is absent or the cell is the "none" control).
  overload::ShedConfig shed_config(std::size_t shed_i) const {
    overload::ShedConfig sc;
    if (!spec.shed_policies.empty()) {
      sc.policy = overload::parse_shed_policy(spec.shed_policies[shed_i]);
      sc.queue_cap = spec.queue_cap;
      sc.deadline_slack = spec.deadline_slack;
    }
    return sc;
  }
};

Grid resolve(const SweepSpec& in) {
  Grid g;
  g.spec = in;
  if (g.spec.policies.empty())
    throw std::invalid_argument("sweep: no policies given");
  for (const std::string& p : g.spec.policies) {
    if (p.empty()) throw std::invalid_argument("sweep: empty policy name");
    if (!algo::is_known_policy(p))
      throw std::invalid_argument("sweep: unknown policy '" + p +
                                  "' (see algo::make_policy)");
  }
  if (g.spec.seeds <= 0)
    throw std::invalid_argument("sweep: seeds must be positive");
  if (g.spec.jobs <= 0)
    throw std::invalid_argument("sweep: jobs must be positive");
  if (g.spec.load <= 0.0)
    throw std::invalid_argument("sweep: load must be positive");
  if (g.spec.eps_grid.empty()) g.spec.eps_grid = experiments::epsilon_sweep();
  for (const double e : g.spec.eps_grid)
    if (e <= 0.0)
      throw std::invalid_argument("sweep: eps must be positive, got " +
                                  fmt(e));
  for (const double r : g.spec.fault_rates)
    if (r < 0.0)
      throw std::invalid_argument(
          "sweep: fault rates must be non-negative, got " + fmt(r));
  if (!g.spec.fault_rates.empty() && g.spec.fault_mttr <= 0.0)
    throw std::invalid_argument("sweep: fault mttr must be positive");
  if (g.spec.fault_horizon < 0.0)
    throw std::invalid_argument("sweep: fault horizon must be >= 0");
  for (std::size_t i = 0; i < g.spec.shed_policies.size(); ++i) {
    try {
      overload::validate_shed_config(g.shed_config(i));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("sweep: ") + e.what());
    }
  }
  if (g.spec.retries < 0)
    throw std::invalid_argument("sweep: retries must be >= 0");
  if (g.spec.resume && g.spec.checkpoint.empty())
    throw std::invalid_argument("sweep: --resume needs --checkpoint");

  const auto named = experiments::standard_trees();
  if (g.spec.trees.empty())
    for (const auto& nt : named) g.spec.trees.push_back(nt.name);
  for (const std::string& want : g.spec.trees) {
    const auto it =
        std::find_if(named.begin(), named.end(),
                     [&want](const auto& nt) { return nt.name == want; });
    if (it == named.end())
      throw std::invalid_argument("sweep: unknown tree '" + want +
                                  "' (see experiments::standard_trees)");
    g.trees.push_back(std::make_shared<const Tree>(it->tree));
  }
  return g;
}

/// Canonical identity of the resolved result grid — everything that decides
/// what the measurements ARE, nothing about how they are executed. Journal
/// files carry this as their fingerprint so --resume refuses a stale or
/// foreign checkpoint.
std::uint64_t spec_fingerprint(const SweepSpec& spec) {
  std::ostringstream os;
  os << "sweep-grid-v2";
  for (const auto& p : spec.policies) os << "|p=" << p;
  for (const auto& t : spec.trees) os << "|t=" << t;
  for (const double e : spec.eps_grid) os << "|e=" << fmt(e);
  for (const double r : spec.fault_rates) os << "|f=" << fmt(r);
  os << "|seeds=" << spec.seeds << "|base=" << spec.base_seed
     << "|jobs=" << spec.jobs << "|load=" << fmt(spec.load);
  if (!spec.fault_rates.empty())
    os << "|mttr=" << fmt(spec.fault_mttr)
       << "|horizon=" << fmt(spec.fault_horizon);
  for (const auto& sp : spec.shed_policies) os << "|shed=" << sp;
  if (!spec.shed_policies.empty())
    os << "|cap=" << fmt(spec.queue_cap)
       << "|slack=" << fmt(spec.deadline_slack);
  const std::string s = os.str();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Append-only checkpoint journal. One flushed line per completed task, so
/// a kill loses at most the line in flight; the trailing "ok" token lets the
/// reader drop a torn tail instead of resurrecting a half-written double.
class Checkpoint {
 public:
  Checkpoint(const std::string& path, std::uint64_t fingerprint, bool resume) {
    bool append = false;
    if (resume && std::filesystem::exists(path)) {
      load(path, fingerprint);
      append = true;
    }
    out_.open(path, append ? (std::ios::out | std::ios::app)
                           : (std::ios::out | std::ios::trunc));
    if (!out_)
      throw std::runtime_error("cannot open checkpoint journal '" + path +
                               "' for writing");
    if (!append) {
      out_ << "sweepjournal 2\nfingerprint " << fingerprint << '\n';
      out_.flush();
    }
  }

  const std::map<std::size_t, SweepTask>& completed() const { return done_; }

  /// Thread-safe: called from pool workers as tasks finish.
  void record(const SweepTask& t) {
    if (t.status != TaskStatus::kOk) return;
    const std::lock_guard<std::mutex> lock(mu_);
    out_ << "task " << t.index << ' ' << fmt(t.ratio) << ' '
         << fmt(t.alg_flow) << ' ' << fmt(t.lower_bound) << ' '
         << fmt(t.mean_flow) << ' ' << fmt(t.goodput) << ' ' << t.completed
         << ' ' << t.shed_jobs << " ok\n";
    out_.flush();
  }

 private:
  void load(const std::string& path, std::uint64_t fingerprint) {
    std::ifstream in(path);
    if (!in)
      throw std::runtime_error("cannot read checkpoint journal '" + path +
                               "'");
    std::string line;
    // Version 2 added goodput / completed / shed-count columns; resuming a
    // version-1 journal would silently drop them, so it is refused.
    if (!std::getline(in, line) || line != "sweepjournal 2")
      throw std::invalid_argument(
          "'" + path +
          "' is not a sweepjournal-2 checkpoint (pre-overload journals "
          "cannot be resumed; rerun without --resume)");
    std::uint64_t fp = 0;
    {
      std::string tag;
      if (!std::getline(in, line))
        throw std::invalid_argument("checkpoint journal '" + path +
                                    "' is missing its fingerprint");
      std::istringstream ls(line);
      if (!(ls >> tag >> fp) || tag != "fingerprint")
        throw std::invalid_argument("checkpoint journal '" + path +
                                    "' is missing its fingerprint");
    }
    if (fp != fingerprint)
      throw std::invalid_argument(
          "checkpoint journal '" + path +
          "' belongs to a different sweep grid; rerun without --resume or "
          "point --checkpoint elsewhere");
    while (std::getline(in, line)) {
      std::istringstream ls(line);
      std::string tag, tail;
      // Doubles go through stod, not operator>>: a fully-shed cell journals
      // its mean flow as "nan", which stream extraction need not accept.
      std::string ratio, alg_flow, lower_bound, mean_flow, goodput;
      SweepTask t;
      if (!(ls >> tag >> t.index >> ratio >> alg_flow >> lower_bound >>
            mean_flow >> goodput >> t.completed >> t.shed_jobs >> tail) ||
          tag != "task" || tail != "ok")
        break;  // torn tail from a killed run: everything after is suspect
      try {
        t.ratio = std::stod(ratio);
        t.alg_flow = std::stod(alg_flow);
        t.lower_bound = std::stod(lower_bound);
        t.mean_flow = std::stod(mean_flow);
        t.goodput = std::stod(goodput);
      } catch (const std::exception&) {
        break;
      }
      t.status = TaskStatus::kOk;
      done_[t.index] = t;
    }
  }

  std::mutex mu_;
  std::ofstream out_;
  std::map<std::size_t, SweepTask> done_;
};

/// Runs one grid point. Pure in (grid, task.index): every random choice
/// derives from task.seed, so the result is thread-count independent.
SweepTask run_one(const Grid& grid, SweepTask task) {
  const util::Stopwatch watch;
  const SweepSpec& spec = grid.spec;
  const double eps = spec.eps_grid[task.eps_i];

  util::Rng rng(task.seed);
  workload::WorkloadSpec wspec;
  wspec.jobs = spec.jobs;
  wspec.load = spec.load;
  wspec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  wspec.sizes.class_eps = eps;
  const Instance inst =
      workload::generate(rng, grid.trees[task.tree_i], wspec);
  const SpeedProfile speeds = SpeedProfile::paper_identical(inst.tree(), eps);

  sim::EngineConfig cfg;
  const bool record = !spec.record_dir.empty();
  cfg.record_schedule = record;
  const overload::ShedConfig shed_cfg = grid.shed_config(task.shed_i);
  cfg.shed = shed_cfg;
  const auto policy =
      algo::make_policy(spec.policies[task.policy_i], inst, eps, task.seed);
  sim::Engine engine(inst, speeds, cfg);

  std::optional<overload::AdmissionController> admission;
  if (shed_cfg.enabled()) {
    admission.emplace(shed_cfg, eps);
    engine.set_admission(&*admission);
  }

  fault::FaultPlan plan;
  algo::FaultAwareGreedy redispatch(eps);
  if (!spec.fault_rates.empty()) {
    fault::FaultModel model;
    model.node_failure_rate = spec.fault_rates[task.fault_i];
    model.node_mttr = spec.fault_mttr;
    const Time last_release =
        inst.job_count() > 0 ? inst.jobs().back().release : 0.0;
    model.horizon = spec.fault_horizon > 0.0 ? spec.fault_horizon
                                             : std::max(10.0, 2.0 * last_release);
    // ~task.seed decorrelates the plan stream from the workload stream
    // (Rng(seed) itself consumes the first split_seed outputs of `seed`).
    plan = fault::generate_plan(inst.tree(), model,
                                util::split_seed(~task.seed, 1));
    engine.set_fault_plan(&plan, &redispatch);
  }
  engine.run(*policy);

  const sim::Metrics& m = engine.metrics();
  task.alg_flow = m.total_flow_time();
  task.mean_flow = m.mean_flow_time();
  task.goodput = m.goodput();
  task.completed = m.jobs().size() - m.shed_count() - m.rejected_count();
  task.shed_jobs = m.shed_count() + m.rejected_count();
  task.lower_bound = lp::combined_lower_bound(inst);
  task.ratio =
      task.lower_bound > 0.0 ? task.alg_flow / task.lower_bound : 0.0;
  if (record) {
    // One file pair per task (index-suffixed): concurrent workers never
    // share a stream, and each pair replays under treesched_audit.
    workload::write_trace_file(
        sim::task_log_path(spec.record_dir + "/trace.txt", task.index), inst);
    sim::write_run_log_file(
        sim::task_log_path(spec.record_dir + "/run.log", task.index),
        sim::make_run_log(inst, engine));
  }
  task.status = TaskStatus::kOk;
  task.wall_ms = watch.elapsed_seconds() * 1000.0;
  return task;
}

/// run_one wrapped in the transient-failure retry loop: attempt k sleeps
/// retry_backoff_ms * min(2^(k-1), 32) first, then re-runs. Determinism is
/// unaffected — a retried task re-derives everything from the same seed.
SweepTask run_with_retries(const Grid& grid, const SweepTask& task) {
  const SweepSpec& spec = grid.spec;
  for (int attempt = 1;; ++attempt) {
    try {
      if (spec.inject_fault) spec.inject_fault(task, attempt);
      SweepTask done = run_one(grid, task);
      done.attempts = attempt;
      return done;
    } catch (...) {
      if (attempt > spec.retries) throw;
      const double mult = std::min(32.0, std::ldexp(1.0, attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          spec.retry_backoff_ms * mult));
    }
  }
}

}  // namespace

double probe_offered_load(const SweepSpec& in) {
  const Grid grid = resolve(in);
  const SweepSpec& spec = grid.spec;
  double worst = 0.0;
  for (const auto& tree : grid.trees)
    for (const double eps : spec.eps_grid) {
      util::Rng rng(util::split_seed(spec.base_seed, 0));
      workload::WorkloadSpec wspec;
      wspec.jobs = spec.jobs;
      wspec.load = spec.load;
      wspec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      wspec.sizes.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, wspec);
      worst = std::max(
          worst, workload::offered_load(
                     inst, SpeedProfile::paper_identical(inst.tree(), eps)));
    }
  return worst;
}

SweepResult run_sweep(const SweepSpec& in) {
  const util::Stopwatch watch;
  const Grid grid = resolve(in);
  const SweepSpec& spec = grid.spec;
  if (!spec.record_dir.empty())
    std::filesystem::create_directories(spec.record_dir);

  // Fixed task enumeration; task identity never depends on execution.
  std::vector<SweepTask> tasks;
  for (std::size_t p = 0; p < spec.policies.size(); ++p)
    for (std::size_t t = 0; t < grid.trees.size(); ++t)
      for (std::size_t e = 0; e < spec.eps_grid.size(); ++e)
        for (std::size_t f = 0; f < grid.fault_count(); ++f)
          for (std::size_t sh = 0; sh < grid.shed_count(); ++sh)
            for (int s = 0; s < spec.seeds; ++s) {
              SweepTask task;
              task.index = tasks.size();
              task.policy_i = p;
              task.tree_i = t;
              task.eps_i = e;
              task.fault_i = f;
              task.shed_i = sh;
              task.seed_index = s;
              task.seed = util::split_seed(spec.base_seed, task.index);
              tasks.push_back(task);
            }

  SweepResult result;
  result.spec = spec;
  result.threads_used =
      spec.threads == 0 ? default_thread_count() : spec.threads;
  result.tasks.resize(tasks.size());

  std::shared_ptr<Checkpoint> journal;
  if (!spec.checkpoint.empty())
    journal = std::make_shared<Checkpoint>(
        spec.checkpoint, spec_fingerprint(spec), spec.resume);

  // Satisfy resumed tasks from the journal; only the rest run.
  std::vector<SweepTask> pending;
  for (const SweepTask& task : tasks) {
    if (journal) {
      const auto it = journal->completed().find(task.index);
      if (it != journal->completed().end()) {
        SweepTask done = task;  // identity from the fresh enumeration
        done.status = TaskStatus::kOk;
        done.ratio = it->second.ratio;
        done.alg_flow = it->second.alg_flow;
        done.lower_bound = it->second.lower_bound;
        done.mean_flow = it->second.mean_flow;
        done.goodput = it->second.goodput;
        done.completed = it->second.completed;
        done.shed_jobs = it->second.shed_jobs;
        result.tasks[task.index] = done;
        ++result.resumed;
        continue;
      }
    }
    pending.push_back(task);
  }

  const bool use_pool = result.threads_used > 1 || spec.timeout_ms > 0.0;
  if (!use_pool) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (spec.cancel != nullptr &&
          spec.cancel->load(std::memory_order_relaxed)) {
        result.interrupted = true;
        for (; i < pending.size(); ++i) {
          result.tasks[pending[i].index] = pending[i];
          result.tasks[pending[i].index].status = TaskStatus::kCancelled;
        }
        break;
      }
      const SweepTask& task = pending[i];
      try {
        SweepTask done = run_with_retries(grid, task);
        if (journal) journal->record(done);
        result.tasks[task.index] = std::move(done);
      } catch (const std::exception& e) {
        result.tasks[task.index] = task;
        result.tasks[task.index].status = TaskStatus::kFailed;
        result.tasks[task.index].error = e.what();
        util::log_warn("sweep task ", task.index, " failed: ", e.what());
      }
    }
  } else if (!pending.empty()) {
    ThreadPool pool(std::min(result.threads_used, pending.size()));
    std::vector<std::future<SweepTask>> futures;
    futures.reserve(pending.size());
    for (const SweepTask& task : pending)
      futures.push_back(pool.submit([&grid, task, journal] {
        SweepTask done = run_with_retries(grid, task);
        if (journal) journal->record(done);
        return done;
      }));
    // Any positive budget must stay a budget: sub-millisecond values would
    // otherwise truncate to 0, which the gather reads as "forever".
    const auto patience = std::chrono::milliseconds(
        spec.timeout_ms > 0.0
            ? std::max(1LL, static_cast<long long>(spec.timeout_ms))
            : 0LL);
    auto gathered = gather_cancellable(futures, patience, spec.cancel);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (gathered.values[i]) {
        result.tasks[pending[i].index] = std::move(*gathered.values[i]);
      } else {
        result.tasks[pending[i].index] = pending[i];
        result.tasks[pending[i].index].status = TaskStatus::kTimedOut;
      }
    }
    for (const auto& [i, what] : gathered.failed) {
      result.tasks[pending[i].index].status = TaskStatus::kFailed;
      result.tasks[pending[i].index].error = what;
      util::log_warn("sweep task ", pending[i].index, " failed: ", what);
    }
    for (const std::size_t i : gathered.cancelled)
      result.tasks[pending[i].index].status = TaskStatus::kCancelled;
    if (!gathered.cancelled.empty()) {
      // Clean interruption: drop the queue but let in-flight tasks finish
      // (and land in the journal) while the pool joins.
      result.interrupted = true;
      pool.cancel_pending();
    }
    if (!gathered.timed_out.empty()) {
      // Skipped-task report instead of a hang: drop unstarted work and
      // detach any worker still stuck inside a task.
      util::log_warn("sweep: ", gathered.timed_out.size(),
                     " task(s) exceeded --timeout-ms; reporting them as "
                     "skipped");
      pool.cancel_pending();
      pool.abandon();
    }
  }

  // Per-cell aggregation, in enumeration order, from index-ordered results.
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < spec.policies.size(); ++p)
    for (std::size_t t = 0; t < grid.trees.size(); ++t)
      for (std::size_t e = 0; e < spec.eps_grid.size(); ++e)
        for (std::size_t f = 0; f < grid.fault_count(); ++f)
          for (std::size_t sh = 0; sh < grid.shed_count(); ++sh) {
          SweepCellStats cell;
          cell.policy_i = p;
          cell.tree_i = t;
          cell.eps_i = e;
          cell.fault_i = f;
          cell.shed_i = sh;
          stats::Summary ratios;
          stats::Summary flows;
          stats::Summary goodputs;
          std::vector<double> samples;
          for (int s = 0; s < spec.seeds; ++s, ++cursor) {
            const SweepTask& task = result.tasks[cursor];
            if (task.status != TaskStatus::kOk) {
              ++cell.skipped;
              continue;
            }
            ratios.add(task.ratio);
            // A fully-shed repetition has no completed jobs and a NaN mean
            // flow / goodput; the cell means average the defined ones.
            if (std::isfinite(task.mean_flow)) flows.add(task.mean_flow);
            if (std::isfinite(task.goodput)) goodputs.add(task.goodput);
            cell.completed += task.completed;
            cell.shed_jobs += task.shed_jobs;
            samples.push_back(task.ratio);
          }
          cell.count = ratios.count();
          if (cell.count > 0) {
            cell.ratio_mean = ratios.mean();
            cell.ratio_min = ratios.min();
            cell.ratio_max = ratios.max();
            cell.mean_flow = flows.count() > 0
                                 ? flows.mean()
                                 : std::numeric_limits<double>::quiet_NaN();
            cell.goodput_mean =
                goodputs.count() > 0
                    ? goodputs.mean()
                    : std::numeric_limits<double>::quiet_NaN();
            // Bootstrap stream keyed by the cell's enumeration index, not by
            // any task stream: deterministic at any thread count.
            util::Rng boot(util::split_seed(~spec.base_seed,
                                            result.cells.size()));
            const auto ci = stats::bootstrap_mean_ci(boot, samples);
            cell.ratio_ci_lo = ci.first;
            cell.ratio_ci_hi = ci.second;
          }
          result.cells.push_back(cell);
        }

  for (const SweepTask& task : result.tasks) result.task_ms_sum += task.wall_ms;
  result.wall_ms = watch.elapsed_seconds() * 1000.0;
  return result;
}

std::string sweep_json(const SweepResult& r, bool include_timing) {
  const SweepSpec& spec = r.spec;
  const bool faulty = !spec.fault_rates.empty();
  const bool shedding = !spec.shed_policies.empty();
  std::ostringstream os;
  os << "{\n  \"schema\": \"treesched-sweep-v1\",\n  \"spec\": {\n";
  os << "    \"policies\": [";
  for (std::size_t i = 0; i < spec.policies.size(); ++i)
    os << (i ? ", " : "") << quoted(spec.policies[i]);
  os << "],\n    \"trees\": [";
  for (std::size_t i = 0; i < spec.trees.size(); ++i)
    os << (i ? ", " : "") << quoted(spec.trees[i]);
  os << "],\n    \"eps\": [";
  for (std::size_t i = 0; i < spec.eps_grid.size(); ++i)
    os << (i ? ", " : "") << fmt(spec.eps_grid[i]);
  os << "],\n";
  if (faulty) {
    os << "    \"fault_rates\": [";
    for (std::size_t i = 0; i < spec.fault_rates.size(); ++i)
      os << (i ? ", " : "") << fmt(spec.fault_rates[i]);
    os << "],\n    \"fault_mttr\": " << fmt(spec.fault_mttr)
       << ",\n    \"fault_horizon\": " << fmt(spec.fault_horizon) << ",\n";
  }
  if (shedding) {
    os << "    \"shed_policies\": [";
    for (std::size_t i = 0; i < spec.shed_policies.size(); ++i)
      os << (i ? ", " : "") << quoted(spec.shed_policies[i]);
    os << "],\n    \"queue_cap\": " << fmt(spec.queue_cap)
       << ",\n    \"deadline_slack\": " << fmt(spec.deadline_slack) << ",\n";
  }
  os << "    \"seeds\": " << spec.seeds
     << ",\n    \"base_seed\": " << spec.base_seed
     << ",\n    \"jobs\": " << spec.jobs
     << ",\n    \"load\": " << fmt(spec.load)
     << ",\n    \"timeout_ms\": " << fmt(spec.timeout_ms) << "\n  },\n";

  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const SweepCellStats& c = r.cells[i];
    os << "    {\"policy\": " << quoted(spec.policies[c.policy_i])
       << ", \"tree\": " << quoted(spec.trees[c.tree_i])
       << ", \"eps\": " << fmt(spec.eps_grid[c.eps_i]);
    if (faulty)
      os << ", \"fault_rate\": " << fmt(spec.fault_rates[c.fault_i]);
    if (shedding)
      os << ", \"shed_policy\": " << quoted(spec.shed_policies[c.shed_i]);
    os << ", \"count\": " << c.count << ", \"skipped\": " << c.skipped
       << ", \"ratio_mean\": " << fmt(c.ratio_mean)
       << ", \"ratio_ci95\": [" << fmt(c.ratio_ci_lo) << ", "
       << fmt(c.ratio_ci_hi) << "]"
       << ", \"ratio_min\": " << fmt(c.ratio_min)
       << ", \"ratio_max\": " << fmt(c.ratio_max)
       << ", \"mean_flow\": " << json_num(c.mean_flow);
    if (shedding)
      os << ", \"goodput_mean\": " << json_num(c.goodput_mean)
         << ", \"completed\": " << c.completed
         << ", \"shed\": " << c.shed_jobs;
    os << "}" << (i + 1 < r.cells.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"tasks\": [\n";
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    const SweepTask& t = r.tasks[i];
    const char* status = t.status == TaskStatus::kOk          ? "ok"
                         : t.status == TaskStatus::kTimedOut  ? "timeout"
                         : t.status == TaskStatus::kCancelled ? "cancelled"
                                                              : "failed";
    os << "    {\"index\": " << t.index << ", \"policy\": "
       << quoted(spec.policies[t.policy_i])
       << ", \"tree\": " << quoted(spec.trees[t.tree_i])
       << ", \"eps\": " << fmt(spec.eps_grid[t.eps_i]);
    if (faulty)
      os << ", \"fault_rate\": " << fmt(spec.fault_rates[t.fault_i]);
    if (shedding)
      os << ", \"shed_policy\": " << quoted(spec.shed_policies[t.shed_i]);
    os << ", \"seed_index\": " << t.seed_index << ", \"seed\": " << t.seed
       << ", \"status\": \"" << status << "\""
       << ", \"ratio\": " << fmt(t.ratio)
       << ", \"alg_flow\": " << fmt(t.alg_flow)
       << ", \"lower_bound\": " << fmt(t.lower_bound);
    if (shedding)
      os << ", \"goodput\": " << json_num(t.goodput)
         << ", \"completed\": " << t.completed
         << ", \"shed\": " << t.shed_jobs;
    os << "}" << (i + 1 < r.tasks.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"skipped_tasks\": [";
  bool first = true;
  for (const SweepTask& t : r.tasks)
    if (t.status != TaskStatus::kOk) {
      os << (first ? "" : ", ") << t.index;
      first = false;
    }
  os << "]";

  if (include_timing) {
    // Everything below varies run to run; it is opt-in so the default
    // document stays byte-identical across thread counts.
    os << ",\n  \"timing\": {\"threads\": " << r.threads_used
       << ", \"wall_ms\": " << fmt(r.wall_ms)
       << ", \"task_ms_sum\": " << fmt(r.task_ms_sum)
       << ", \"resumed\": " << r.resumed
       << ", \"speedup_estimate\": "
       << fmt(r.wall_ms > 0.0 ? r.task_ms_sum / r.wall_ms : 0.0) << "}";
  }
  os << "\n}\n";
  return os.str();
}

void write_sweep_json_file(const std::string& path, const SweepResult& result,
                           bool include_timing) {
  util::write_file_atomic(path, sweep_json(result, include_timing));
}

std::string sweep_table(const SweepResult& r) {
  const bool faulty = !r.spec.fault_rates.empty();
  const bool shedding = !r.spec.shed_policies.empty();
  std::vector<std::string> headers{"policy", "tree", "eps"};
  if (faulty) headers.push_back("fault rate");
  if (shedding) headers.push_back("shed policy");
  for (const char* h : {"reps", "ratio mean", "ci95 lo", "ci95 hi",
                        "ratio max", "skipped"})
    headers.push_back(h);
  if (shedding) {
    headers.push_back("goodput");
    headers.push_back("shed");
  }
  util::Table table(headers);
  for (const SweepCellStats& c : r.cells) {
    std::vector<std::string> row{r.spec.policies[c.policy_i],
                                 r.spec.trees[c.tree_i],
                                 util::Table::num(r.spec.eps_grid[c.eps_i])};
    if (faulty) row.push_back(util::Table::num(r.spec.fault_rates[c.fault_i]));
    if (shedding) row.push_back(r.spec.shed_policies[c.shed_i]);
    row.push_back(std::to_string(c.count));
    row.push_back(util::Table::num(c.ratio_mean));
    row.push_back(util::Table::num(c.ratio_ci_lo));
    row.push_back(util::Table::num(c.ratio_ci_hi));
    row.push_back(util::Table::num(c.ratio_max));
    row.push_back(std::to_string(c.skipped));
    if (shedding) {
      row.push_back(std::isfinite(c.goodput_mean)
                        ? util::Table::num(c.goodput_mean)
                        : std::string("-"));
      row.push_back(std::to_string(c.shed_jobs));
    }
    table.add_row(row);
  }
  return table.str();
}

}  // namespace treesched::exec
