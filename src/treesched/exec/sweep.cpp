#include "treesched/exec/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "treesched/algo/policies.hpp"
#include "treesched/exec/parallel.hpp"
#include "treesched/experiments/harness.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/stats/bootstrap.hpp"
#include "treesched/stats/summary.hpp"
#include "treesched/util/log.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/util/stopwatch.hpp"
#include "treesched/util/table.hpp"
#include "treesched/workload/generator.hpp"
#include "treesched/workload/trace_io.hpp"

namespace treesched::exec {

namespace {

struct Grid {
  SweepSpec spec;  // trees / eps resolved
  std::vector<std::shared_ptr<const Tree>> trees;
};

Grid resolve(const SweepSpec& in) {
  Grid g;
  g.spec = in;
  if (g.spec.policies.empty())
    throw std::invalid_argument("sweep: no policies given");
  if (g.spec.seeds <= 0)
    throw std::invalid_argument("sweep: seeds must be positive");
  if (g.spec.jobs <= 0)
    throw std::invalid_argument("sweep: jobs must be positive");
  if (g.spec.eps_grid.empty()) g.spec.eps_grid = experiments::epsilon_sweep();

  const auto named = experiments::standard_trees();
  if (g.spec.trees.empty())
    for (const auto& nt : named) g.spec.trees.push_back(nt.name);
  for (const std::string& want : g.spec.trees) {
    const auto it =
        std::find_if(named.begin(), named.end(),
                     [&want](const auto& nt) { return nt.name == want; });
    if (it == named.end())
      throw std::invalid_argument("sweep: unknown tree '" + want +
                                  "' (see experiments::standard_trees)");
    g.trees.push_back(std::make_shared<const Tree>(it->tree));
  }
  return g;
}

/// Runs one grid point. Pure in (grid, task.index): every random choice
/// derives from task.seed, so the result is thread-count independent.
SweepTask run_one(const Grid& grid, SweepTask task) {
  const util::Stopwatch watch;
  const SweepSpec& spec = grid.spec;
  const double eps = spec.eps_grid[task.eps_i];

  util::Rng rng(task.seed);
  workload::WorkloadSpec wspec;
  wspec.jobs = spec.jobs;
  wspec.load = spec.load;
  wspec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  wspec.sizes.class_eps = eps;
  const Instance inst =
      workload::generate(rng, grid.trees[task.tree_i], wspec);
  const SpeedProfile speeds = SpeedProfile::paper_identical(inst.tree(), eps);

  sim::EngineConfig cfg;
  const bool record = !spec.record_dir.empty();
  cfg.record_schedule = record;
  const auto policy =
      algo::make_policy(spec.policies[task.policy_i], inst, eps, task.seed);
  sim::Engine engine(inst, speeds, cfg);
  engine.run(*policy);

  const sim::Metrics& m = engine.metrics();
  task.alg_flow = m.total_flow_time();
  task.mean_flow = m.mean_flow_time();
  task.lower_bound = lp::combined_lower_bound(inst);
  task.ratio =
      task.lower_bound > 0.0 ? task.alg_flow / task.lower_bound : 0.0;
  if (record) {
    // One file pair per task (index-suffixed): concurrent workers never
    // share a stream, and each pair replays under treesched_audit.
    workload::write_trace_file(
        sim::task_log_path(spec.record_dir + "/trace.txt", task.index), inst);
    sim::write_run_log_file(
        sim::task_log_path(spec.record_dir + "/run.log", task.index),
        sim::make_run_log(inst, speeds, cfg, engine.recorder(), m));
  }
  task.status = TaskStatus::kOk;
  task.wall_ms = watch.elapsed_seconds() * 1000.0;
  return task;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

SweepResult run_sweep(const SweepSpec& in) {
  const util::Stopwatch watch;
  const Grid grid = resolve(in);
  const SweepSpec& spec = grid.spec;
  if (!spec.record_dir.empty())
    std::filesystem::create_directories(spec.record_dir);

  // Fixed task enumeration; task identity never depends on execution.
  std::vector<SweepTask> tasks;
  for (std::size_t p = 0; p < spec.policies.size(); ++p)
    for (std::size_t t = 0; t < grid.trees.size(); ++t)
      for (std::size_t e = 0; e < spec.eps_grid.size(); ++e)
        for (int s = 0; s < spec.seeds; ++s) {
          SweepTask task;
          task.index = tasks.size();
          task.policy_i = p;
          task.tree_i = t;
          task.eps_i = e;
          task.seed_index = s;
          task.seed = util::split_seed(spec.base_seed, task.index);
          tasks.push_back(task);
        }

  SweepResult result;
  result.spec = spec;
  result.threads_used =
      spec.threads == 0 ? default_thread_count() : spec.threads;
  result.tasks.resize(tasks.size());

  const bool use_pool = result.threads_used > 1 || spec.timeout_ms > 0.0;
  if (!use_pool) {
    for (const SweepTask& task : tasks)
      result.tasks[task.index] = run_one(grid, task);
  } else {
    ThreadPool pool(std::min(result.threads_used, tasks.size()));
    std::vector<std::future<SweepTask>> futures;
    futures.reserve(tasks.size());
    for (const SweepTask& task : tasks)
      futures.push_back(
          pool.submit([&grid, task] { return run_one(grid, task); }));
    // Any positive budget must stay a budget: sub-millisecond values would
    // otherwise truncate to 0, which gather_with_deadline reads as "forever".
    const auto patience = std::chrono::milliseconds(
        spec.timeout_ms > 0.0
            ? std::max(1LL, static_cast<long long>(spec.timeout_ms))
            : 0LL);
    auto gathered = gather_with_deadline(futures, patience);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (gathered.values[i]) {
        result.tasks[i] = std::move(*gathered.values[i]);
      } else {
        result.tasks[i] = tasks[i];
        result.tasks[i].status = TaskStatus::kTimedOut;
      }
    }
    for (const auto& [i, what] : gathered.failed) {
      result.tasks[i].status = TaskStatus::kFailed;
      result.tasks[i].error = what;
      util::log_warn("sweep task ", i, " failed: ", what);
    }
    if (!gathered.timed_out.empty()) {
      // Skipped-task report instead of a hang: drop unstarted work and
      // detach any worker still stuck inside a task.
      util::log_warn("sweep: ", gathered.timed_out.size(),
                     " task(s) exceeded --timeout-ms; reporting them as "
                     "skipped");
      pool.cancel_pending();
      pool.abandon();
    }
  }

  // Per-cell aggregation, in enumeration order, from index-ordered results.
  const std::size_t cell_count = spec.policies.size() * grid.trees.size() *
                                 spec.eps_grid.size();
  result.cells.reserve(cell_count);
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < spec.policies.size(); ++p)
    for (std::size_t t = 0; t < grid.trees.size(); ++t)
      for (std::size_t e = 0; e < spec.eps_grid.size(); ++e) {
        SweepCellStats cell;
        cell.policy_i = p;
        cell.tree_i = t;
        cell.eps_i = e;
        stats::Summary ratios;
        stats::Summary flows;
        std::vector<double> samples;
        for (int s = 0; s < spec.seeds; ++s, ++cursor) {
          const SweepTask& task = result.tasks[cursor];
          if (task.status != TaskStatus::kOk) {
            ++cell.skipped;
            continue;
          }
          ratios.add(task.ratio);
          flows.add(task.mean_flow);
          samples.push_back(task.ratio);
        }
        cell.count = ratios.count();
        if (cell.count > 0) {
          cell.ratio_mean = ratios.mean();
          cell.ratio_min = ratios.min();
          cell.ratio_max = ratios.max();
          cell.mean_flow = flows.mean();
          // Bootstrap stream keyed by the cell's enumeration index, not by
          // any task stream: deterministic at any thread count.
          util::Rng boot(util::split_seed(~spec.base_seed,
                                          result.cells.size()));
          const auto ci = stats::bootstrap_mean_ci(boot, samples);
          cell.ratio_ci_lo = ci.first;
          cell.ratio_ci_hi = ci.second;
        }
        result.cells.push_back(cell);
      }

  for (const SweepTask& task : result.tasks) result.task_ms_sum += task.wall_ms;
  result.wall_ms = watch.elapsed_seconds() * 1000.0;
  return result;
}

std::string sweep_json(const SweepResult& r, bool include_timing) {
  const SweepSpec& spec = r.spec;
  std::ostringstream os;
  os << "{\n  \"schema\": \"treesched-sweep-v1\",\n  \"spec\": {\n";
  os << "    \"policies\": [";
  for (std::size_t i = 0; i < spec.policies.size(); ++i)
    os << (i ? ", " : "") << quoted(spec.policies[i]);
  os << "],\n    \"trees\": [";
  for (std::size_t i = 0; i < spec.trees.size(); ++i)
    os << (i ? ", " : "") << quoted(spec.trees[i]);
  os << "],\n    \"eps\": [";
  for (std::size_t i = 0; i < spec.eps_grid.size(); ++i)
    os << (i ? ", " : "") << fmt(spec.eps_grid[i]);
  os << "],\n    \"seeds\": " << spec.seeds
     << ",\n    \"base_seed\": " << spec.base_seed
     << ",\n    \"jobs\": " << spec.jobs
     << ",\n    \"load\": " << fmt(spec.load)
     << ",\n    \"timeout_ms\": " << fmt(spec.timeout_ms) << "\n  },\n";

  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const SweepCellStats& c = r.cells[i];
    os << "    {\"policy\": " << quoted(spec.policies[c.policy_i])
       << ", \"tree\": " << quoted(spec.trees[c.tree_i])
       << ", \"eps\": " << fmt(spec.eps_grid[c.eps_i])
       << ", \"count\": " << c.count << ", \"skipped\": " << c.skipped
       << ", \"ratio_mean\": " << fmt(c.ratio_mean)
       << ", \"ratio_ci95\": [" << fmt(c.ratio_ci_lo) << ", "
       << fmt(c.ratio_ci_hi) << "]"
       << ", \"ratio_min\": " << fmt(c.ratio_min)
       << ", \"ratio_max\": " << fmt(c.ratio_max)
       << ", \"mean_flow\": " << fmt(c.mean_flow) << "}"
       << (i + 1 < r.cells.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"tasks\": [\n";
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    const SweepTask& t = r.tasks[i];
    const char* status = t.status == TaskStatus::kOk ? "ok"
                         : t.status == TaskStatus::kTimedOut ? "timeout"
                                                             : "failed";
    os << "    {\"index\": " << t.index << ", \"policy\": "
       << quoted(spec.policies[t.policy_i])
       << ", \"tree\": " << quoted(spec.trees[t.tree_i])
       << ", \"eps\": " << fmt(spec.eps_grid[t.eps_i])
       << ", \"seed_index\": " << t.seed_index << ", \"seed\": " << t.seed
       << ", \"status\": \"" << status << "\""
       << ", \"ratio\": " << fmt(t.ratio)
       << ", \"alg_flow\": " << fmt(t.alg_flow)
       << ", \"lower_bound\": " << fmt(t.lower_bound) << "}"
       << (i + 1 < r.tasks.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"skipped_tasks\": [";
  bool first = true;
  for (const SweepTask& t : r.tasks)
    if (t.status != TaskStatus::kOk) {
      os << (first ? "" : ", ") << t.index;
      first = false;
    }
  os << "]";

  if (include_timing) {
    // Everything below varies run to run; it is opt-in so the default
    // document stays byte-identical across thread counts.
    os << ",\n  \"timing\": {\"threads\": " << r.threads_used
       << ", \"wall_ms\": " << fmt(r.wall_ms)
       << ", \"task_ms_sum\": " << fmt(r.task_ms_sum)
       << ", \"speedup_estimate\": "
       << fmt(r.wall_ms > 0.0 ? r.task_ms_sum / r.wall_ms : 0.0) << "}";
  }
  os << "\n}\n";
  return os.str();
}

void write_sweep_json_file(const std::string& path, const SweepResult& result,
                           bool include_timing) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open json output: " + path);
  f << sweep_json(result, include_timing);
}

std::string sweep_table(const SweepResult& r) {
  util::Table table({"policy", "tree", "eps", "reps", "ratio mean", "ci95 lo",
                     "ci95 hi", "ratio max", "skipped"});
  for (const SweepCellStats& c : r.cells)
    table.add(r.spec.policies[c.policy_i], r.spec.trees[c.tree_i],
              r.spec.eps_grid[c.eps_i], c.count, c.ratio_mean, c.ratio_ci_lo,
              c.ratio_ci_hi, c.ratio_max, c.skipped);
  return table.str();
}

}  // namespace treesched::exec
