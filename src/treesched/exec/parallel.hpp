// Deterministic parallel map over an index range.
//
// Determinism contract: the function receives only its task index (derive
// per-task randomness with util::split_seed(base, index)), and results are
// gathered by task index — never by completion order — so the output vector
// is bit-identical for any thread count, including the fully sequential
// threads == 1 path.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "treesched/exec/thread_pool.hpp"

namespace treesched::exec {

/// std::thread::hardware_concurrency() clamped to at least 1.
std::size_t hardware_threads();

/// Worker count for experiment parallelism: the TREESCHED_THREADS environment
/// variable when set (clamped to [1, 512]; invalid values fall back), else
/// hardware_threads(). `TREESCHED_THREADS=1` restores fully sequential
/// execution in every rewired code path.
std::size_t default_thread_count();

/// Runs fn(0..n-1) on `threads` workers and returns the results in index
/// order. threads <= 1 executes inline on the caller's thread (no pool, no
/// extra threads — exactly the pre-parallel behavior). The first exception
/// thrown by any task is rethrown after the pool drains.
template <typename Fn>
auto parallel_map(std::size_t threads, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out;
  out.reserve(n);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  ThreadPool pool(threads < n ? threads : n);
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  for (std::size_t i = 0; i < n; ++i) out.push_back(futures[i].get());
  return out;
}

/// parallel_map without results.
template <typename Fn>
void parallel_for(std::size_t threads, std::size_t n, Fn&& fn) {
  parallel_map(threads, n, [&fn](std::size_t i) {
    fn(i);
    return 0;
  });
}

/// Result of gather_with_deadline / gather_cancellable: values in index
/// order (nullopt for tasks that missed the deadline, were cancelled, or
/// threw), plus the indices of each kind.
template <typename R>
struct GatherReport {
  std::vector<std::optional<R>> values;
  std::vector<std::size_t> timed_out;
  /// Unfinished when the cancel flag was observed (gather_cancellable only).
  std::vector<std::size_t> cancelled;
  /// (index, exception message) for tasks that threw.
  std::vector<std::pair<std::size_t, std::string>> failed;
};

/// gather_with_deadline plus cooperative cancellation: `cancel` (may be
/// nullptr) is polled while waiting; once it reads true, results that are
/// already finished are still collected, and every unfinished future is
/// reported as cancelled instead of being waited for. The caller owns the
/// pool: typically it then drops the queue with cancel_pending() and lets
/// in-flight tasks drain.
template <typename R>
GatherReport<R> gather_cancellable(std::vector<std::future<R>>& futures,
                                   std::chrono::milliseconds timeout,
                                   const std::atomic<bool>* cancel) {
  using Clock = std::chrono::steady_clock;
  constexpr std::chrono::milliseconds kSlice(20);
  GatherReport<R> report;
  report.values.resize(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    // Per-task patience, measured from this future's gather turn; while
    // earlier tasks are waited on, later ones run in the background.
    const bool bounded = timeout.count() > 0;
    // treesched-lint: allow(det-wallclock): gather patience only decides how
    // long to wait for a worker; task results and their order are fixed by
    // the futures themselves, so the clock cannot reach any output.
    const auto deadline =
        bounded ? Clock::now() + timeout : Clock::time_point::max();
    bool ready = false;
    bool late = false;
    for (;;) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        ready = futures[i].wait_for(std::chrono::milliseconds(0)) ==
                std::future_status::ready;
        break;
      }
      if (!bounded && cancel == nullptr) {
        futures[i].wait();
        ready = true;
        break;
      }
      auto wait = cancel != nullptr ? kSlice : std::chrono::milliseconds::max();
      if (bounded) {
        // treesched-lint: allow(det-wallclock): remaining-patience check for
        // the same wait deadline; never observable in results.
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0) {
          late = true;
          break;
        }
        wait = std::min(wait, std::max(left, std::chrono::milliseconds(1)));
      }
      if (futures[i].wait_for(wait) == std::future_status::ready) {
        ready = true;
        break;
      }
    }
    if (ready) {
      try {
        report.values[i] = futures[i].get();
      } catch (const std::exception& e) {
        report.failed.emplace_back(i, e.what());
      } catch (...) {
        report.failed.emplace_back(i, "unknown exception");
      }
    } else if (late) {
      report.timed_out.push_back(i);
    } else {
      report.cancelled.push_back(i);
    }
  }
  return report;
}

/// Index-ordered gather with a per-task patience budget: waits at most
/// `timeout` for each future (measured from the moment its turn to be
/// gathered comes up). timeout <= 0 waits forever. Never hangs on a wedged
/// task: the caller owns the pool and decides whether to drain or abandon()
/// it afterwards.
template <typename R>
GatherReport<R> gather_with_deadline(std::vector<std::future<R>>& futures,
                                     std::chrono::milliseconds timeout) {
  return gather_cancellable(futures, timeout, nullptr);
}

}  // namespace treesched::exec
