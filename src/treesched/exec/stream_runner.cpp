#include "treesched/exec/stream_runner.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/instance.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/runlog_segments.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/mem.hpp"
#include "treesched/util/stopwatch.hpp"

namespace treesched::exec {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Streaming-safe policies only: every decision must be reproducible from
/// (engine state, stream_state token). broomstick-mirror simulates the whole
/// instance up front and fault-greedy needs fault plans — both are
/// incompatible with windowed streams.
std::unique_ptr<sim::AssignmentPolicy> make_stream_policy(
    const std::string& name, double eps, std::uint64_t seed) {
  if (name == "paper") return std::make_unique<algo::PaperGreedyPolicy>(eps);
  if (name == "closest") return std::make_unique<algo::ClosestLeafPolicy>();
  if (name == "random")
    return std::make_unique<algo::RandomLeafPolicy>(seed);
  if (name == "round-robin")
    return std::make_unique<algo::RoundRobinPolicy>();
  if (name == "least-volume")
    return std::make_unique<algo::LeastVolumePolicy>();
  if (name == "least-count")
    return std::make_unique<algo::LeastCountPolicy>();
  if (name == "two-choice")
    return std::make_unique<algo::TwoChoicePolicy>(seed);
  throw std::invalid_argument(
      "policy '" + name +
      "' is not streaming-safe (want paper|closest|random|round-robin|"
      "least-volume|least-count|two-choice)");
}

/// Identity of the run every snapshot is checked against: resuming under a
/// different tree, speed profile, stream, policy, or windowing would replay
/// a DIFFERENT run while claiming continuity.
std::string spec_string(const Tree& tree, const SpeedProfile& speeds,
                        const StreamRunnerConfig& cfg) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "tree";
  for (NodeId v = 0; v < tree.node_count(); ++v)
    os << ' ' << tree.parent(v) << ':' << static_cast<int>(tree.kind(v));
  os << "\nspeeds";
  for (NodeId v = 0; v < tree.node_count(); ++v)
    os << ' ' << speeds.speed(v);
  os << "\nstream " << cfg.stream.seed << ' ' << cfg.stream.lambda << ' '
     << static_cast<int>(cfg.stream.sizes.dist) << ' ' << cfg.stream.sizes.scale
     << ' ' << cfg.stream.sizes.spread << ' ' << cfg.stream.sizes.shape << ' '
     << cfg.stream.sizes.mix << ' ' << cfg.stream.sizes.class_eps;
  os << "\nrun " << cfg.total_jobs << ' ' << cfg.window << ' ' << cfg.policy
     << ' ' << cfg.eps << ' ' << cfg.policy_seed << ' '
     << static_cast<int>(cfg.node_policy) << ' '
     << static_cast<int>(cfg.shed.policy) << ' ' << cfg.shed.queue_cap << ' '
     << cfg.shed.deadline_slack << ' ' << (cfg.record_path.empty() ? 0 : 1)
     << ' ' << cfg.segment_cap << ' ' << cfg.snapshot_every;
  return os.str();
}

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag,
             std::string("snapshot: expected '") + tag + "', got '" + got +
                 "'");
}

class StreamRunner;

/// Feeds completions to the segment writer the instant they happen and
/// drains the recorder whenever it fills a segment (so the tail
/// run_to_completion phase cannot grow the recorder unboundedly).
class StreamFeed : public sim::EngineObserver {
 public:
  explicit StreamFeed(StreamRunner* runner) : runner_(runner) {}
  void on_job_completed(const sim::Engine& engine, JobId j) override;
  void on_event(const sim::Engine& engine, Time t) override;

 private:
  StreamRunner* runner_;
};

class StreamRunner {
 public:
  StreamRunner(std::shared_ptr<const Tree> tree, const SpeedProfile& speeds,
               const StreamRunnerConfig& cfg)
      : tree_(std::move(tree)),
        speeds_(speeds),
        cfg_(cfg),
        stream_(cfg.stream),
        feed_(this) {
    TS_REQUIRE(cfg_.total_jobs > 0, "streaming run needs total_jobs > 0");
    TS_REQUIRE(cfg_.window > 0, "streaming run needs a positive window");
    overload::validate_shed_config(cfg_.shed);
    if (cfg_.snapshot_every > 0 || cfg_.die_after_snapshot > 0)
      TS_REQUIRE(!cfg_.snapshot_path.empty(),
                 "snapshotting needs --snapshot-path");
    policy_ = make_stream_policy(cfg_.policy, cfg_.eps, cfg_.policy_seed);
    if (cfg_.shed.enabled()) admission_.emplace(cfg_.shed, cfg_.eps);
    if (!cfg_.record_path.empty())
      writer_.emplace(
          sim::SegmentedRunLogWriter::Config{cfg_.record_path,
                                             cfg_.segment_cap},
          *tree_, speeds_.speeds(), cfg_.node_policy, 0.0, cfg_.shed);
    spec_fp_ = fnv1a(spec_string(*tree_, speeds_, cfg_));
  }

  StreamRunnerResult run() {
    if (cfg_.resume_snapshot.empty()) {
      if (writer_) writer_->start_fresh();
      fill_window(sim::StreamAccumulator());
    } else {
      load_snapshot();
    }
    for (;;) {
      while (processed_ < window_jobs_.size()) {
        step_one_arrival();
        if (result_.interrupted) return finish();
      }
      if (base_ + processed_ >= cfg_.total_jobs) break;
      // The next arrival exists; decide how it enters the system.
      const workload::StreamJob nxt = stream_.peek(gen_cursor_);
      engine_->advance_to(nxt.release);
      drain();
      if (engine_->drained()) {
        // Quiescent instant: nothing in flight, so the finished window's
        // per-job records can be dropped — the accumulator carries the
        // metrics across.
        sim::StreamAccumulator acc = engine_->metrics().stream_accumulator();
        fill_window(std::move(acc));
      } else {
        extend_window();
      }
    }
    engine_->run_to_completion();
    drain();
    if (writer_) {
      const sim::StreamAccumulator& acc =
          engine_->metrics().stream_accumulator();
      writer_->write_final(base_ + processed_, acc.completed, acc.shed,
                           acc.rejected, acc.flow.value(), acc.makespan);
    }
    return finish();
  }

  // Observer callbacks (via StreamFeed).
  void on_done(const sim::Engine& engine, JobId j) {
    if (writer_)
      writer_->on_done(base_ + static_cast<std::uint64_t>(j), engine.now());
  }
  void on_tick(const sim::Engine& engine) {
    if (writer_ && engine.recorder().segments().size() >= cfg_.segment_cap)
      drain();
    heartbeat(engine.now());
  }

 private:
  StreamRunnerResult finish() {
    result_.arrivals = base_ + processed_;
    result_.acc = engine_->metrics().stream_accumulator();
    if (writer_) result_.segments_written = writer_->next_index();
    return result_;
  }

  /// Builds a fresh engine over the next window of at most `window` arrivals
  /// starting at the generation cursor, seeding its metrics with `acc`.
  void fill_window(sim::StreamAccumulator acc) {
    base_ = gen_cursor_.index;
    window_cursor_ = gen_cursor_;
    window_jobs_.clear();
    const std::uint64_t remaining = cfg_.total_jobs - base_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(cfg_.window,
                                                         remaining));
    for (std::size_t i = 0; i < n; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(i), sj.release, sj.size);
    }
    processed_ = 0;
    shed_consumed_ = 0;
    rebuild_engine(nullptr, &acc);
  }

  /// Grows the current window by one quantum and moves the live engine
  /// state over byte-exactly.
  void extend_window() {
    std::ostringstream blob;
    engine_->save_state(blob);
    const std::uint64_t generated = base_ + window_jobs_.size();
    const std::uint64_t remaining = cfg_.total_jobs - generated;
    const std::size_t grow =
        static_cast<std::size_t>(std::min<std::uint64_t>(cfg_.window,
                                                         remaining));
    TS_REQUIRE(grow > 0, "extend_window with no arrivals left");
    for (std::size_t i = 0; i < grow; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(window_jobs_.size()),
                                sj.release, sj.size);
    }
    std::istringstream in(blob.str());
    rebuild_engine(&in, nullptr);
  }

  /// (Re)creates instance + engine over window_jobs_. Exactly one of
  /// `state` (load_state blob) / `acc` (fresh streaming window) is given.
  void rebuild_engine(std::istream* state, sim::StreamAccumulator* acc) {
    engine_.reset();  // references the old instance — must go first
    inst_ = std::make_unique<Instance>(tree_, window_jobs_,
                                       EndpointModel::kIdentical);
    sim::EngineConfig ecfg;
    ecfg.node_policy = cfg_.node_policy;
    ecfg.record_schedule = writer_.has_value();
    ecfg.router_chunk_size = 0.0;
    ecfg.slow_queries = cfg_.slow_queries;
    ecfg.shed = cfg_.shed;
    engine_ = std::make_unique<sim::Engine>(*inst_, speeds_, ecfg);
    if (admission_) engine_->set_admission(&*admission_);
    if (state != nullptr)
      engine_->load_state(*state);
    else
      engine_->metrics().enable_streaming(std::move(*acc));
    engine_->set_observer(&feed_);
    result_.max_window = std::max(result_.max_window, window_jobs_.size());
  }

  void step_one_arrival() {
    const Job& job = inst_->job(static_cast<JobId>(processed_));
    engine_->advance_to(job.release);
    const bool admitted =
        !admission_ || admission_->admit(*engine_, job);
    if (admitted) {
      const NodeId leaf = policy_->assign(*engine_, job);
      engine_->admit(job.id, leaf);
      if (writer_)
        writer_->on_admit(base_ + processed_, job.release, job.weight,
                          job.size, leaf);
    } else if (!engine_->job_rejected(job.id)) {
      engine_->reject(job.id);
    }
    ++processed_;
    drain();
    heartbeat(engine_->now());
    const std::uint64_t done = base_ + processed_;
    if (cfg_.snapshot_every > 0 && done % cfg_.snapshot_every == 0 &&
        done < cfg_.total_jobs)
      take_snapshot(done);
  }

  /// Feeds everything the engine produced so far to the segment writer.
  /// Always a safe point for commit: callers invoke it only when every
  /// event with sort key <= now() has been processed.
  void drain() {
    if (!writer_) return;
    for (const sim::Segment& s : engine_->recorder().segments())
      writer_->on_burst(s, base_ + uidx(s.job));
    engine_->recorder().clear();
    const auto& sl = engine_->shed_log();
    for (; shed_consumed_ < sl.size(); ++shed_consumed_) {
      const sim::ShedRecord& r = sl[shed_consumed_];
      const std::uint64_t gj = base_ + uidx(r.job);
      if (r.kind == sim::ShedRecord::Kind::kShed)
        writer_->on_shed(r.t, gj);
      else if (r.kind == sim::ShedRecord::Kind::kReject)
        writer_->on_reject(r.t, gj);
      // kAdmit is deadline-policy bookkeeping, not part of the segment
      // format (the monolithic run log keeps it).
    }
    writer_->commit(false);
  }

  void take_snapshot(std::uint64_t done) {
    drain();
    if (writer_) writer_->commit(true);
    std::ostringstream os;
    os << std::setprecision(17);
    os << "streamsnap 1\n";
    os << "spec " << spec_fp_ << '\n';
    os << "progress " << done << '\n';
    os << "window " << base_ << ' ' << window_jobs_.size() << ' '
       << processed_ << '\n';
    os << "wcursor " << window_cursor_.index << ' ' << window_cursor_.clock
       << '\n';
    os << "gcursor " << gen_cursor_.index << ' ' << gen_cursor_.clock << '\n';
    os << "policystate " << policy_->stream_state() << '\n';
    os << "shedconsumed " << shed_consumed_ << '\n';
    if (writer_)
      os << "writer " << writer_->next_index() << ' ' << writer_->chain()
         << '\n';
    else
      os << "writer 0 0\n";
    engine_->save_state(os);
    os << "streamsnap-end\n";
    util::write_file_atomic(cfg_.snapshot_path, os.str());
    ++result_.snapshots_written;
    if (cfg_.die_after_snapshot > 0 &&
        result_.snapshots_written >= cfg_.die_after_snapshot)
      result_.interrupted = true;
  }

  void load_snapshot() {
    std::ifstream is = [this] {
      std::ifstream f(cfg_.resume_snapshot);
      TS_REQUIRE(static_cast<bool>(f),
                 "cannot open snapshot " + cfg_.resume_snapshot);
      return f;
    }();
    expect_tag(is, "streamsnap");
    int version = 0;
    TS_REQUIRE(static_cast<bool>(is >> version) && version == 1,
               "unsupported snapshot version");
    expect_tag(is, "spec");
    std::uint64_t fp = 0;
    is >> fp;
    TS_REQUIRE(is && fp == spec_fp_,
               "snapshot was taken under a different run spec");
    expect_tag(is, "progress");
    std::uint64_t done = 0;
    is >> done;
    expect_tag(is, "window");
    std::size_t count = 0;
    is >> base_ >> count >> processed_;
    expect_tag(is, "wcursor");
    is >> window_cursor_.index >> window_cursor_.clock;
    expect_tag(is, "gcursor");
    workload::StreamCursor gcur;
    is >> gcur.index >> gcur.clock;
    expect_tag(is, "policystate");
    std::string pstate;
    is >> pstate;
    expect_tag(is, "shedconsumed");
    is >> shed_consumed_;
    expect_tag(is, "writer");
    std::size_t widx = 0;
    std::uint64_t wchain = 0;
    is >> widx >> wchain;
    TS_REQUIRE(static_cast<bool>(is), "truncated snapshot header");
    TS_REQUIRE(done == base_ + processed_,
               "snapshot progress disagrees with its window position");

    // Regenerate the window from its cursor — bit-identical to the original
    // generation by the per-index RNG-stream construction.
    gen_cursor_ = window_cursor_;
    window_jobs_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(i), sj.release, sj.size);
    }
    TS_REQUIRE(gen_cursor_.index == gcur.index &&
                   gen_cursor_.clock == gcur.clock,
               "regenerated window does not land on the saved cursor");
    rebuild_engine(&is, nullptr);
    expect_tag(is, "streamsnap-end");
    policy_->restore_stream_state(pstate);
    if (writer_) writer_->resume(widx, wchain);
  }

  void heartbeat(Time sim_now) {
    if (cfg_.progress_every <= 0.0) return;
    if (watch_.elapsed_seconds() - last_beat_ < cfg_.progress_every) return;
    last_beat_ = watch_.elapsed_seconds();
    std::cerr << "[stream] jobs " << (base_ + processed_) << '/'
              << cfg_.total_jobs << " simtime " << sim_now << " window "
              << window_jobs_.size() << " rss "
              << util::current_rss_bytes() / (1024 * 1024) << "MB\n";
  }

  std::shared_ptr<const Tree> tree_;
  SpeedProfile speeds_;
  StreamRunnerConfig cfg_;
  workload::JobStream stream_;
  StreamFeed feed_;
  std::unique_ptr<sim::AssignmentPolicy> policy_;
  std::optional<overload::AdmissionController> admission_;
  std::optional<sim::SegmentedRunLogWriter> writer_;
  std::uint64_t spec_fp_ = 0;

  std::unique_ptr<Instance> inst_;
  std::unique_ptr<sim::Engine> engine_;
  std::vector<Job> window_jobs_;
  workload::StreamCursor gen_cursor_;     ///< next arrival to generate
  workload::StreamCursor window_cursor_;  ///< cursor at window start
  std::uint64_t base_ = 0;                ///< global id of window-local 0
  std::size_t processed_ = 0;             ///< window-local arrivals consumed
  std::size_t shed_consumed_ = 0;         ///< shed-log entries fed to writer

  util::Stopwatch watch_;
  double last_beat_ = 0.0;
  StreamRunnerResult result_;
};

void StreamFeed::on_job_completed(const sim::Engine& engine, JobId j) {
  runner_->on_done(engine, j);
}

void StreamFeed::on_event(const sim::Engine& engine, Time /*t*/) {
  runner_->on_tick(engine);
}

}  // namespace

StreamRunnerResult run_stream(std::shared_ptr<const Tree> tree,
                              const SpeedProfile& speeds,
                              const StreamRunnerConfig& cfg) {
  TS_REQUIRE(tree != nullptr, "run_stream needs a tree");
  StreamRunner runner(std::move(tree), speeds, cfg);
  return runner.run();
}

}  // namespace treesched::exec
