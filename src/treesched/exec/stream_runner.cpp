#include "treesched/exec/stream_runner.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/instance.hpp"
#include "treesched/exec/snapshot_store.hpp"
#include "treesched/guard/clock.hpp"
#include "treesched/guard/governor.hpp"
#include "treesched/guard/guard_log.hpp"
#include "treesched/guard/health.hpp"
#include "treesched/guard/watchdog.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/runlog_segments.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/hash.hpp"
#include "treesched/util/mem.hpp"
#include "treesched/util/stopwatch.hpp"

namespace treesched::exec {

namespace {

/// Streaming-safe policies only: every decision must be reproducible from
/// (engine state, stream_state token). broomstick-mirror simulates the whole
/// instance up front and fault-greedy needs fault plans — both are
/// incompatible with windowed streams.
std::unique_ptr<sim::AssignmentPolicy> make_stream_policy(
    const std::string& name, double eps, std::uint64_t seed) {
  if (name == "paper") return std::make_unique<algo::PaperGreedyPolicy>(eps);
  if (name == "closest") return std::make_unique<algo::ClosestLeafPolicy>();
  if (name == "random")
    return std::make_unique<algo::RandomLeafPolicy>(seed);
  if (name == "round-robin")
    return std::make_unique<algo::RoundRobinPolicy>();
  if (name == "least-volume")
    return std::make_unique<algo::LeastVolumePolicy>();
  if (name == "least-count")
    return std::make_unique<algo::LeastCountPolicy>();
  if (name == "two-choice")
    return std::make_unique<algo::TwoChoicePolicy>(seed);
  throw std::invalid_argument(
      "policy '" + name +
      "' is not streaming-safe (want paper|closest|random|round-robin|"
      "least-volume|least-count|two-choice)");
}

/// Identity of the run every snapshot is checked against: resuming under a
/// different tree, speed profile, stream, policy, or windowing would replay
/// a DIFFERENT run while claiming continuity.
std::string spec_string(const Tree& tree, const SpeedProfile& speeds,
                        const StreamRunnerConfig& cfg) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "tree";
  for (NodeId v = 0; v < tree.node_count(); ++v)
    os << ' ' << tree.parent(v) << ':' << static_cast<int>(tree.kind(v));
  os << "\nspeeds";
  for (NodeId v = 0; v < tree.node_count(); ++v)
    os << ' ' << speeds.speed(v);
  os << "\nstream " << cfg.stream.seed << ' ' << cfg.stream.lambda << ' '
     << static_cast<int>(cfg.stream.sizes.dist) << ' ' << cfg.stream.sizes.scale
     << ' ' << cfg.stream.sizes.spread << ' ' << cfg.stream.sizes.shape << ' '
     << cfg.stream.sizes.mix << ' ' << cfg.stream.sizes.class_eps;
  os << "\nrun " << cfg.total_jobs << ' ' << cfg.window << ' ' << cfg.policy
     << ' ' << cfg.eps << ' ' << cfg.policy_seed << ' '
     << static_cast<int>(cfg.node_policy) << ' '
     << static_cast<int>(cfg.shed.policy) << ' ' << cfg.shed.queue_cap << ' '
     << cfg.shed.deadline_slack << ' ' << (cfg.record_path.empty() ? 0 : 1)
     << ' ' << cfg.segment_cap << ' ' << cfg.snapshot_every;
  return os.str();
}

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag,
             std::string("snapshot: expected '") + tag + "', got '" + got +
                 "'");
}

class StreamRunner;

/// Feeds completions to the segment writer the instant they happen and
/// drains the recorder whenever it fills a segment (so the tail
/// run_to_completion phase cannot grow the recorder unboundedly).
class StreamFeed : public sim::EngineObserver {
 public:
  explicit StreamFeed(StreamRunner* runner) : runner_(runner) {}
  void on_job_admitted(const sim::Engine& engine, JobId j) override;
  void on_job_completed(const sim::Engine& engine, JobId j) override;
  void on_event(const sim::Engine& engine, Time t) override;

 private:
  StreamRunner* runner_;
};

class StreamRunner {
 public:
  StreamRunner(std::shared_ptr<const Tree> tree, const SpeedProfile& speeds,
               const StreamRunnerConfig& cfg)
      : tree_(std::move(tree)),
        speeds_(speeds),
        cfg_(cfg),
        stream_(cfg.stream),
        feed_(this) {
    TS_REQUIRE(cfg_.total_jobs > 0, "streaming run needs total_jobs > 0");
    TS_REQUIRE(cfg_.window > 0, "streaming run needs a positive window");
    overload::validate_shed_config(cfg_.shed);
    if (cfg_.snapshot_every > 0 || cfg_.die_after_snapshot > 0)
      TS_REQUIRE(!cfg_.snapshot_path.empty(),
                 "snapshotting needs --snapshot-path");
    policy_ = make_stream_policy(cfg_.policy, cfg_.eps, cfg_.policy_seed);
    if (cfg_.shed.enabled()) admission_.emplace(cfg_.shed, cfg_.eps);
    if (!cfg_.record_path.empty())
      writer_.emplace(
          sim::SegmentedRunLogWriter::Config{cfg_.record_path,
                                             cfg_.segment_cap},
          *tree_, speeds_.speeds(), cfg_.node_policy, 0.0, cfg_.shed);
    if (!cfg_.snapshot_path.empty())
      store_.emplace(cfg_.snapshot_path, cfg_.snapshot_keep);
    spec_fp_ = util::fnv1a_64(spec_string(*tree_, speeds_, cfg_));
    window_quantum_ = cfg_.window;
    if (cfg_.guard.watchdog.enabled())
      watchdog_.emplace(cfg_.guard.watchdog, &gclock_);
    if (cfg_.guard.governor.enabled())
      governor_.emplace(cfg_.guard.governor);
    if (!cfg_.guard.guard_log.empty()) {
      glog_.emplace(cfg_.guard.guard_log);
      // Incarnation preamble: the armed configuration every later guard
      // line is audited against.
      glog_->ceiling(cfg_.guard.governor,
                     cfg_.guard.watchdog.window_deadline_s);
    }
  }

  StreamRunnerResult run() {
    if (cfg_.resume_snapshot.empty()) {
      if (writer_) writer_->start_fresh();
      fill_window(sim::StreamAccumulator());
    } else {
      load_snapshot();
    }
    for (;;) {
      while (processed_ < window_jobs_.size()) {
        if (check_cancel()) return finish();
        step_one_arrival();
        if (result_.interrupted) return finish();
      }
      if (check_cancel()) return finish();
      if (base_ + processed_ >= cfg_.total_jobs) break;
      // The next arrival exists; decide how it enters the system.
      const workload::StreamJob nxt = stream_.peek(gen_cursor_);
      engine_->advance_to(nxt.release);
      drain();
      if (engine_->drained()) {
        // Quiescent instant: nothing in flight, so the finished window's
        // per-job records can be dropped — the accumulator carries the
        // metrics across.
        sim::StreamAccumulator acc = engine_->metrics().stream_accumulator();
        fill_window(std::move(acc));
      } else {
        extend_window();
      }
    }
    // Tail drain: every arrival is in, so "window deadline" no longer
    // applies — disarm the watchdog rather than abort a finishing run.
    watchdog_.reset();
    engine_->run_to_completion();
    drain();
    if (writer_) {
      const sim::StreamAccumulator& acc =
          engine_->metrics().stream_accumulator();
      writer_->write_final(base_ + processed_, acc.completed, acc.shed,
                           acc.rejected, acc.flow.value(), acc.makespan);
    }
    return finish();
  }

  // Observer callbacks (via StreamFeed).
  void on_admitted(const sim::Engine& engine, JobId j) {
    if (admission_) admission_->estimator().on_job_admitted(engine, j);
  }
  void on_done(const sim::Engine& engine, JobId j) {
    if (writer_)
      writer_->on_done(base_ + static_cast<std::uint64_t>(j), engine.now());
  }
  void on_tick(const sim::Engine& engine) {
    if (writer_ && engine.recorder().segments().size() >= cfg_.segment_cap)
      drain();
    heartbeat(engine.now());
    write_status();
    poll_watchdog();
  }

 private:
  StreamRunnerResult finish() {
    result_.arrivals = base_ + processed_;
    if (governor_) result_.stage = governor_->stage();
    write_status(/*force=*/true);
    result_.acc = engine_->metrics().stream_accumulator();
    if (writer_) result_.segments_written = writer_->next_index();
    if (admission_) {
      // rho-hat first (it prunes the window at now()), then serialize — the
      // byte-compared state is the post-reading one both runs agree on.
      result_.rho_hat_root =
          admission_->estimator().max_root_child_rho(*engine_);
      std::ostringstream os;
      admission_->save_state(os);
      result_.overload_state = os.str();
    }
    return result_;
  }

  /// Builds a fresh engine over the next window of at most `window` arrivals
  /// starting at the generation cursor, seeding its metrics with `acc`.
  void fill_window(sim::StreamAccumulator acc) {
    base_ = gen_cursor_.index;
    window_cursor_ = gen_cursor_;
    window_jobs_.clear();
    const std::uint64_t remaining = cfg_.total_jobs - base_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(window_quantum_,
                                                         remaining));
    for (std::size_t i = 0; i < n; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(i), sj.release, sj.size);
    }
    processed_ = 0;
    shed_consumed_ = 0;
    rebuild_engine(nullptr, &acc);
  }

  /// Grows the current window by one quantum and moves the live engine
  /// state over byte-exactly.
  void extend_window() {
    std::ostringstream blob;
    engine_->save_state(blob);
    const std::uint64_t generated = base_ + window_jobs_.size();
    const std::uint64_t remaining = cfg_.total_jobs - generated;
    const std::size_t grow =
        static_cast<std::size_t>(std::min<std::uint64_t>(window_quantum_,
                                                         remaining));
    TS_REQUIRE(grow > 0, "extend_window with no arrivals left");
    for (std::size_t i = 0; i < grow; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(window_jobs_.size()),
                                sj.release, sj.size);
    }
    std::istringstream in(blob.str());
    rebuild_engine(&in, nullptr);
  }

  /// (Re)creates instance + engine over window_jobs_. Exactly one of
  /// `state` (load_state blob) / `acc` (fresh streaming window) is given.
  void rebuild_engine(std::istream* state, sim::StreamAccumulator* acc) {
    // Carry the retiring engine's arena footprint forward so the next
    // window's job arenas start at their steady-state size instead of
    // re-growing from zero on every rotation.
    const std::size_t arena_hint =
        engine_ != nullptr ? engine_->arena_size() : 0;
    engine_.reset();  // references the old instance — must go first
    inst_ = std::make_unique<Instance>(tree_, window_jobs_,
                                       EndpointModel::kIdentical);
    sim::EngineConfig ecfg;
    ecfg.arena_reserve = arena_hint;
    ecfg.node_policy = cfg_.node_policy;
    ecfg.record_schedule = writer_.has_value();
    ecfg.router_chunk_size = 0.0;
    ecfg.slow_queries = cfg_.slow_queries;
    ecfg.shed = cfg_.shed;
    engine_ = std::make_unique<sim::Engine>(*inst_, speeds_, ecfg);
    if (admission_) engine_->set_admission(&*admission_);
    if (state != nullptr)
      engine_->load_state(*state);
    else
      engine_->metrics().enable_streaming(std::move(*acc));
    engine_->set_observer(&feed_);
    result_.max_window = std::max(result_.max_window, window_jobs_.size());
  }

  void step_one_arrival() {
    const Job& job = inst_->job(static_cast<JobId>(processed_));
    engine_->advance_to(job.release);
    const bool admitted =
        !admission_ || admission_->admit(*engine_, job);
    if (admitted) {
      const NodeId leaf = policy_->assign(*engine_, job);
      engine_->admit(job.id, leaf);
      if (writer_)
        writer_->on_admit(base_ + processed_, job.release, job.weight,
                          job.size, leaf);
    } else if (!engine_->job_rejected(job.id)) {
      engine_->reject(job.id);
    }
    ++processed_;
    drain();
    heartbeat(engine_->now());
    const std::uint64_t done = base_ + processed_;
    if (cfg_.snapshot_every > 0 && done % cfg_.snapshot_every == 0 &&
        done < cfg_.total_jobs)
      take_snapshot(done);
    guard_on_arrival(done);
  }

  // --- supervision hooks ---------------------------------------------------

  /// Per-arrival guard work: watchdog re-arm, status refresh, governor
  /// pressure sampling, and the test-only stall. All no-ops (one branch
  /// each) when supervision is off — the bench_endurance overhead gate
  /// holds the guards-on tax under a few percent.
  void guard_on_arrival(std::uint64_t done) {
    if (watchdog_) watchdog_->progress(done);
    write_status();
    if (governor_ && done % cfg_.guard.governor.sample_every == 0)
      sample_governor();
    if (cfg_.guard_stall_at > 0 && !stalled_ && done >= cfg_.guard_stall_at)
      stall();
  }

  void sample_governor() {
    guard::Pressure p;
    p.rss_bytes = util::current_rss_bytes();
    p.event_queue = engine_->event_queue_size();
    p.arena = engine_->arena_size();
    if (const auto to = governor_->observe(p)) apply_stage(*to, p);
  }

  /// Applies one degradation-ladder rung. The mitigations deliberately work
  /// on RUNTIME knobs only (window quantum, effective shed caps) — the
  /// configured spec identity is untouched, so snapshots from a degraded
  /// run still resume under the original flags.
  void apply_stage(guard::Stage to, const guard::Pressure& p) {
    const auto from = static_cast<guard::Stage>(static_cast<int>(to) - 1);
    if (glog_) glog_->governor_escalate(gclock_.now_s(), from, to, p);
    std::cerr << "[guard] governor: " << guard::stage_name(from) << " -> "
              << guard::stage_name(to) << " (rss " << p.rss_bytes
              << " queue " << p.event_queue << " arena " << p.arena << ")\n";
    result_.stage = to;
    switch (to) {
      case guard::Stage::kStreamingMetrics:
        // Streaming runs are born with streaming metrics — the rung is a
        // recorded no-op here so the audited ladder order is uniform.
        break;
      case guard::Stage::kShrunkWindow:
        window_quantum_ = std::max<std::size_t>(64, window_quantum_ / 2);
        break;
      case guard::Stage::kTightenedShed:
        if (admission_) admission_->tighten(0.5);
        break;
      case guard::Stage::kAbort: {
        if (store_) take_snapshot(base_ + processed_);
        throw guard::GovernorAbortError(
            "resource governor: ceilings still breached after the full "
            "degradation ladder (rss " + std::to_string(p.rss_bytes) +
            ", queue " + std::to_string(p.event_queue) + ", arena " +
            std::to_string(p.arena) +
            ") — aborting with the snapshot generation intact; resume with "
            "--resume-snapshot or raise the ceilings");
      }
      case guard::Stage::kNormal:
        break;
    }
  }

  /// Polls the watchdog and performs whatever escalation came due. Runs
  /// inside observer ticks on purpose: a wedged window never reaches the
  /// next arrival boundary, so deferring actions there would never fire.
  /// Tick instants are consistent engine states with exactly [0, processed_)
  /// arrivals admitted, which is what makes the forced snapshot resumable.
  void poll_watchdog() {
    if (!watchdog_) return;
    const auto act = watchdog_->poll();
    if (act == guard::Watchdog::Action::kNone) return;
    const double stalled = watchdog_->stalled_s();
    const std::uint64_t arr = base_ + processed_;
    if (glog_)
      glog_->watchdog(gclock_.now_s(), guard::Watchdog::action_name(act),
                      stalled, arr);
    std::cerr << "[guard] watchdog: " << guard::Watchdog::action_name(act)
              << " — no arrival progress for " << stalled << "s (arrivals "
              << arr << ")\n";
    switch (act) {
      case guard::Watchdog::Action::kLog:
        break;
      case guard::Watchdog::Action::kSnapshot:
        // Secure the progress while the process is still alive: force a
        // snapshot generation (which also rotates the open segment).
        if (store_) {
          take_snapshot(arr);
        } else {
          drain();
          if (writer_) writer_->commit(true);
        }
        break;
      case guard::Watchdog::Action::kAbort:
        throw guard::WatchdogAbortError(
            "watchdog: stream window made no progress for " +
            std::to_string(stalled) + "s (3x the " +
            std::to_string(cfg_.guard.watchdog.window_deadline_s) +
            "s deadline) — aborting; the snapshot generation written at 2x "
            "is intact, resume with --resume-snapshot");
      case guard::Watchdog::Action::kNone:
        break;
    }
  }

  /// TEST ONLY (--guard-stall-at): freeze at an arrival boundary with
  /// status writes and watchdog polls still running — the deterministic
  /// stand-in for a wedged window. May throw WatchdogAbortError mid-stall.
  void stall() {
    stalled_ = true;
    std::cerr << "[guard] test stall: freezing for " << cfg_.guard_stall_s
              << "s at arrival " << (base_ + processed_) << "\n";
    const double until = gclock_.now_s() + cfg_.guard_stall_s;
    while (gclock_.now_s() < until) {
      if (cancel_set()) return;
      write_status();
      poll_watchdog();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Refreshes the child status JSON (atomic replace) at ~4 Hz. rho-hat
  /// reads mid-run are safe for the byte-compared end state: the
  /// estimator's prune is prefix-consistent, so intermediate reads leave
  /// the final serialized state bit-identical.
  void write_status(bool force = false) {
    if (cfg_.status_file.empty()) return;
    const double now = gclock_.now_s();
    if (!force && now - last_status_ < 0.25) return;
    last_status_ = now;
    guard::ChildStatus s;
    s.arrivals = base_ + processed_;
    s.window = window_jobs_.size();
    if (admission_ && engine_)
      s.rho_hat = admission_->estimator().max_root_child_rho(*engine_);
    if (governor_) s.stage = governor_->stage();
    s.t_s = now;
    guard::write_child_status(cfg_.status_file, s);
  }

  bool cancel_set() const {
    return cfg_.cancel != nullptr &&
           cfg_.cancel->load(std::memory_order_relaxed);
  }

  /// Arrival-boundary graceful stop: flush the open segment, write one
  /// final snapshot generation, and report cancelled (exit 130 upstream).
  bool check_cancel() {
    if (!cancel_set()) return false;
    std::cerr << "[stream] stop signal at arrival " << (base_ + processed_)
              << ": flushing segments"
              << (store_ ? " and writing a final snapshot generation" : "")
              << "; resume with --resume-snapshot\n";
    if (store_) {
      take_snapshot(base_ + processed_);
    } else {
      drain();
      if (writer_) writer_->commit(true);
    }
    result_.cancelled = true;
    return true;
  }

  /// Feeds everything the engine produced so far to the segment writer.
  /// Always a safe point for commit: callers invoke it only when every
  /// event with sort key <= now() has been processed.
  void drain() {
    if (!writer_) return;
    for (const sim::Segment& s : engine_->recorder().segments())
      writer_->on_burst(s, base_ + uidx(s.job));
    engine_->recorder().clear();
    const auto& sl = engine_->shed_log();
    for (; shed_consumed_ < sl.size(); ++shed_consumed_) {
      const sim::ShedRecord& r = sl[shed_consumed_];
      const std::uint64_t gj = base_ + uidx(r.job);
      if (r.kind == sim::ShedRecord::Kind::kShed)
        writer_->on_shed(r.t, gj);
      else if (r.kind == sim::ShedRecord::Kind::kReject)
        writer_->on_reject(r.t, gj);
      // kAdmit is deadline-policy bookkeeping, not part of the segment
      // format (the monolithic run log keeps it).
    }
    writer_->commit(false);
  }

  void take_snapshot(std::uint64_t done) {
    drain();
    if (writer_) writer_->commit(true);
    std::ostringstream hs;
    hs << std::setprecision(17);
    hs << "streamsnap 2\n";
    hs << "spec " << spec_fp_ << '\n';
    hs << "progress " << done << '\n';
    hs << "window " << base_ << ' ' << window_jobs_.size() << ' '
       << processed_ << '\n';
    hs << "wcursor " << window_cursor_.index << ' ' << window_cursor_.clock
       << '\n';
    hs << "gcursor " << gen_cursor_.index << ' ' << gen_cursor_.clock << '\n';
    hs << "policystate " << policy_->stream_state() << '\n';
    hs << "shedconsumed " << shed_consumed_ << '\n';
    if (writer_)
      hs << "writer " << writer_->next_index() << ' ' << writer_->chain()
         << '\n';
    else
      hs << "writer 0 0\n";
    std::vector<SnapshotSection> sections;
    sections.push_back({"stream", hs.str()});
    std::ostringstream es;
    engine_->save_state(es);
    sections.push_back({"engine", es.str()});
    if (admission_) {
      std::ostringstream as;
      admission_->save_state(as);
      sections.push_back({"overload", as.str()});
    }
    store_->write(done, encode_snapshot_envelope(sections));
    ++result_.snapshots_written;
    if (cfg_.die_after_snapshot > 0 &&
        result_.snapshots_written >= cfg_.die_after_snapshot)
      result_.interrupted = true;
  }

  /// One rung of the ladder: restores the full runner state from a decoded
  /// envelope. Throws SnapshotSpecMismatchError on a clean snapshot from a
  /// different run and std::invalid_argument on internal inconsistency. May
  /// leave the runner half-mutated on throw — the ladder either retries
  /// (which overwrites everything) or aborts the run.
  void restore_from_sections(const std::vector<SnapshotSection>& sections) {
    std::istringstream is(find_snapshot_section(sections, "stream"));
    expect_tag(is, "streamsnap");
    int version = 0;
    TS_REQUIRE(static_cast<bool>(is >> version) && version == 2,
               "unsupported snapshot version (want streamsnap 2)");
    expect_tag(is, "spec");
    std::uint64_t fp = 0;
    is >> fp;
    TS_REQUIRE(static_cast<bool>(is), "truncated spec line");
    if (fp != spec_fp_)
      throw SnapshotSpecMismatchError(
          "snapshot was taken under a different run spec (tree, stream, "
          "policy, windowing, or shed config differ) — resume with the "
          "original flags or start fresh without --resume-snapshot");
    expect_tag(is, "progress");
    std::uint64_t done = 0;
    is >> done;
    expect_tag(is, "window");
    std::size_t count = 0;
    is >> base_ >> count >> processed_;
    expect_tag(is, "wcursor");
    is >> window_cursor_.index >> window_cursor_.clock;
    expect_tag(is, "gcursor");
    workload::StreamCursor gcur;
    is >> gcur.index >> gcur.clock;
    expect_tag(is, "policystate");
    std::string pstate;
    is >> pstate;
    expect_tag(is, "shedconsumed");
    is >> shed_consumed_;
    expect_tag(is, "writer");
    std::size_t widx = 0;
    std::uint64_t wchain = 0;
    is >> widx >> wchain;
    TS_REQUIRE(static_cast<bool>(is), "truncated snapshot header");
    TS_REQUIRE(done == base_ + processed_,
               "snapshot progress disagrees with its window position");

    // Regenerate the window from its cursor — bit-identical to the original
    // generation by the per-index RNG-stream construction.
    gen_cursor_ = window_cursor_;
    window_jobs_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const workload::StreamJob sj = stream_.next(gen_cursor_);
      window_jobs_.emplace_back(static_cast<JobId>(i), sj.release, sj.size);
    }
    TS_REQUIRE(gen_cursor_.index == gcur.index &&
                   gen_cursor_.clock == gcur.clock,
               "regenerated window does not land on the saved cursor");
    std::istringstream es(find_snapshot_section(sections, "engine"));
    rebuild_engine(&es, nullptr);
    if (admission_) {
      std::istringstream as(find_snapshot_section(sections, "overload"));
      admission_->load_state(as);
    }
    policy_->restore_stream_state(pstate);
    // Cross-check the segmented run log: resume() verifies the manifest
    // chain prefix BEFORE rewriting anything, so a mismatch here (damaged
    // or foreign run log) is safe to retry against an older generation,
    // whose shorter chain prefix may still verify.
    if (writer_) writer_->resume(widx, wchain);
  }

  /// The self-healing resume ladder: walk the manifest newest-first,
  /// quarantine generations whose BYTES are damaged, skip missing ones,
  /// fall back to the newest generation that verifies and restores. Typed
  /// outcomes: SnapshotMissingError (no manifest), SnapshotSpecMismatchError
  /// (clean snapshot, wrong run — no point walking further down, every rung
  /// carries the same spec), SnapshotUnrecoverableError (ladder exhausted).
  void load_snapshot() {
    SnapshotStore store(cfg_.resume_snapshot, cfg_.snapshot_keep);
    const std::vector<SnapshotGeneration> gens = store.generations();
    std::string notes;
    for (std::size_t i = 0; i < gens.size(); ++i) {
      const SnapshotGeneration& gen = gens[i];
      const std::string label = "gen " + std::to_string(gen.index);
      const std::optional<std::string> bytes = store.read(gen);
      if (!bytes) {
        notes += "; " + label + ": file missing";
        continue;
      }
      bool decoded = false;
      try {
        TS_REQUIRE(util::fnv1a_64(*bytes) == gen.fingerprint,
                   "whole-file fingerprint disagrees with the manifest "
                   "(torn write or substituted file)");
        const std::vector<SnapshotSection> sections =
            decode_snapshot_envelope(*bytes);
        decoded = true;
        restore_from_sections(sections);
      } catch (const SnapshotSpecMismatchError&) {
        throw;
      } catch (const std::invalid_argument& e) {
        if (!decoded) {
          // Damaged bytes: quarantine the file (rename, never delete).
          store.quarantine(gen, e.what());
          notes += "; " + label + ": quarantined (" + e.what() + ")";
        } else {
          // The envelope verified but restoring against THIS run failed
          // (e.g. run-log chain mismatch) — the snapshot file itself is
          // fine, so fall back without quarantining it.
          notes += "; " + label + ": restore failed (" + e.what() + ")";
        }
        continue;
      }
      if (i > 0)
        std::cerr << "[stream] resume: newer snapshot generation(s) "
                     "unusable (" << notes.substr(2)
                  << "); resumed from " << label << " at progress "
                  << gen.progress << "\n";
      return;
    }
    throw SnapshotUnrecoverableError(
        "resume failed: all " + std::to_string(gens.size()) +
        " snapshot generation(s) at '" + cfg_.resume_snapshot +
        "' are unusable (" + (notes.empty() ? "empty manifest"
                                            : notes.substr(2)) +
        ") — corrupt files were renamed to *.quarantined; inspect " +
        store.quarantine_log_path() +
        ", then restart without --resume-snapshot or point it at a good "
        "copy");
  }

  void heartbeat(Time sim_now) {
    if (cfg_.progress_every <= 0.0) return;
    if (watch_.elapsed_seconds() - last_beat_ < cfg_.progress_every) return;
    last_beat_ = watch_.elapsed_seconds();
    std::cerr << "[stream] jobs " << (base_ + processed_) << '/'
              << cfg_.total_jobs << " simtime " << sim_now << " window "
              << window_jobs_.size() << " rss "
              << util::current_rss_bytes() / (1024 * 1024) << "MB\n";
  }

  std::shared_ptr<const Tree> tree_;
  SpeedProfile speeds_;
  StreamRunnerConfig cfg_;
  workload::JobStream stream_;
  StreamFeed feed_;
  std::unique_ptr<sim::AssignmentPolicy> policy_;
  std::optional<overload::AdmissionController> admission_;
  std::optional<sim::SegmentedRunLogWriter> writer_;
  std::optional<SnapshotStore> store_;
  std::uint64_t spec_fp_ = 0;

  std::unique_ptr<Instance> inst_;
  std::unique_ptr<sim::Engine> engine_;
  std::vector<Job> window_jobs_;
  workload::StreamCursor gen_cursor_;     ///< next arrival to generate
  workload::StreamCursor window_cursor_;  ///< cursor at window start
  std::uint64_t base_ = 0;                ///< global id of window-local 0
  std::size_t processed_ = 0;             ///< window-local arrivals consumed
  std::size_t shed_consumed_ = 0;         ///< shed-log entries fed to writer

  util::Stopwatch watch_;
  double last_beat_ = 0.0;
  StreamRunnerResult result_;

  // Supervision (guard/): all wall-clock readings flow through gclock_ and
  // reach only the guard sidecar log + status file — never a schedule,
  // metric, or run-log byte.
  guard::SteadyClock gclock_;
  std::optional<guard::Watchdog> watchdog_;
  std::optional<guard::Governor> governor_;
  std::optional<guard::GuardLogWriter> glog_;
  std::size_t window_quantum_ = 0;  ///< runtime quantum (governor may shrink)
  double last_status_ = -1.0;
  bool stalled_ = false;  ///< test stall already performed
};

void StreamFeed::on_job_admitted(const sim::Engine& engine, JobId j) {
  runner_->on_admitted(engine, j);
}

void StreamFeed::on_job_completed(const sim::Engine& engine, JobId j) {
  runner_->on_done(engine, j);
}

void StreamFeed::on_event(const sim::Engine& engine, Time /*t*/) {
  runner_->on_tick(engine);
}

}  // namespace

StreamRunnerResult run_stream(std::shared_ptr<const Tree> tree,
                              const SpeedProfile& speeds,
                              const StreamRunnerConfig& cfg) {
  TS_REQUIRE(tree != nullptr, "run_stream needs a tree");
  StreamRunner runner(std::move(tree), speeds, cfg);
  return runner.run();
}

}  // namespace treesched::exec
