#include "treesched/exec/parallel.hpp"

#include <cstdlib>
#include <string>
#include <thread>

namespace treesched::exec {

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_thread_count() {
  const char* env = std::getenv("TREESCHED_THREADS");
  if (env != nullptr && *env != '\0') {
    try {
      const long v = std::stol(env);
      if (v >= 1) return v > 512 ? 512 : static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      // fall through to the hardware default
    }
  }
  return hardware_threads();
}

}  // namespace treesched::exec
