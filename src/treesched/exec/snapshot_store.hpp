// Checksummed, generation-rotated snapshot storage for streaming runs.
//
// A snapshot is an ENVELOPE (treesched-snapshot-v2): a text container of
// named sections, each carrying its byte length and an FNV-1a-64
// fingerprint, closed by a whole-file fingerprint over everything above it.
// Length-driven parsing makes the decoder robust to payloads that contain
// header-look-alike lines, and the two fingerprint layers mean a torn,
// truncated, or bit-flipped file is REJECTED (std::invalid_argument), never
// silently mis-loaded:
//
//     treesched-snapshot-v2
//     section stream 123 <fnv>
//     <123 payload bytes>
//     section engine 4567 <fnv>
//     <4567 payload bytes>
//     whole <fnv over all bytes above this line>
//
// The store keeps GENERATIONS: each snapshot lands in its own file
// (<base>.genNNN, written atomically) and a tiny manifest at <base> records
// index, progress, and whole-file fingerprint per generation. Retention
// deletes only HEALTHY generations beyond the keep budget; a generation
// that fails verification is QUARANTINED — renamed to <file>.quarantined
// and logged in <base>.quarantine.log — never deleted, so a post-mortem
// always has the corrupt bytes. The resume ladder (stream_runner) walks
// generations newest-first and falls back across them.
//
// Failpoint seams (util/failpoint.hpp): "snapshot.write" (enospc /
// fsync-fail fail loudly before any byte lands; torn-write / bit-flip
// corrupt the envelope silently — the manifest still records the INTENDED
// fingerprint, which is exactly how real lying storage presents) and
// "snapshot.read" (short-read / bit-flip corrupt the returned bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace treesched::exec {

/// No snapshot exists at the base path (nothing was ever written there).
/// treesched_run maps this to its own exit code so operators can tell
/// "never snapshotted" from "snapshotted but unrecoverable".
class SnapshotMissingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Every generation failed verification (all quarantined) — resuming is
/// impossible without operator intervention. The message is the one-line
/// actionable report; the quarantine log has the details.
class SnapshotUnrecoverableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A generation verified clean but was taken from a DIFFERENT run spec —
/// deliberately std::invalid_argument (it is a usage error, not damage).
class SnapshotSpecMismatchError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct SnapshotSection {
  std::string name;
  std::string payload;
};

/// Serializes sections into a treesched-snapshot-v2 envelope.
std::string encode_snapshot_envelope(
    const std::vector<SnapshotSection>& sections);

/// Parses and VERIFIES an envelope (section fingerprints, the whole-file
/// fingerprint, exact byte accounting). Throws std::invalid_argument with an
/// actionable message on any damage or version mismatch.
std::vector<SnapshotSection> decode_snapshot_envelope(
    const std::string& bytes);

/// Returns the payload of the named section; throws std::invalid_argument
/// when absent (a structurally valid envelope from the wrong producer).
const std::string& find_snapshot_section(
    const std::vector<SnapshotSection>& sections, const std::string& name);

/// One manifest entry. `fingerprint` is FNV-1a-64 over the COMPLETE
/// generation file (including its internal whole-fingerprint line), so a
/// valid-but-substituted envelope is also caught.
struct SnapshotGeneration {
  int index = 0;
  std::uint64_t progress = 0;  ///< jobs retired when the snapshot was taken
  std::uint64_t fingerprint = 0;
  std::string path;
};

class SnapshotStore {
 public:
  /// `base` is the manifest path; generations live next to it as
  /// <base>.genNNN. `keep` >= 1 is the retention budget (--snapshot-keep).
  SnapshotStore(std::string base, int keep);

  /// Writes `envelope` as the next generation (atomic file + atomic
  /// manifest rewrite) and deletes healthy generations beyond the keep
  /// budget. Failpoint site "snapshot.write". Throws std::runtime_error on
  /// I/O failure (injected or real).
  void write(std::uint64_t progress, const std::string& envelope);

  /// Manifest entries, NEWEST FIRST (the ladder's walk order). Throws
  /// SnapshotMissingError when no manifest exists at the base path and
  /// std::invalid_argument when the manifest itself is malformed.
  std::vector<SnapshotGeneration> generations() const;

  /// Slurps one generation file. Failpoint site "snapshot.read". Returns
  /// nullopt when the file is missing (a rung the ladder skips); corruption
  /// is the caller's decoder's job to catch.
  std::optional<std::string> read(const SnapshotGeneration& gen) const;

  /// Renames the generation file to <path>.quarantined (never deletes) and
  /// appends a line to the quarantine report. Safe to call when the file
  /// has already vanished.
  void quarantine(const SnapshotGeneration& gen, const std::string& reason);

  std::string quarantine_log_path() const { return base_ + ".quarantine.log"; }
  const std::string& base_path() const { return base_; }
  int keep() const { return keep_; }

 private:
  std::string gen_path(int index) const;
  void write_manifest(const std::vector<SnapshotGeneration>& oldest_first);

  std::string base_;
  int keep_;
};

}  // namespace treesched::exec
