#include "treesched/exec/thread_pool.hpp"

#include <stdexcept>

namespace treesched::exec {

ThreadPool::ThreadPool(std::size_t workers)
    : state_(std::make_shared<State>()) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  // Each worker co-owns the state, so abandon() can detach them and destroy
  // the pool while a wedged task is still running.
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([state = state_] { worker_loop(*state); });
}

ThreadPool::~ThreadPool() {
  if (!abandoned_) shutdown();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->stopping)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    state_->queue.push(std::move(fn));
  }
  state_->work_cv.notify_one();
}

void ThreadPool::worker_loop(State& s) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.work_cv.wait(lock, [&s] { return s.stopping || !s.queue.empty(); });
      if (s.queue.empty()) return;  // stopping with a drained queue
      task = std::move(s.queue.front());
      s.queue.pop();
      ++s.active;
    }
    task();  // a packaged_task: exceptions land in the caller's future
    {
      std::lock_guard<std::mutex> lock(s.mu);
      --s.active;
    }
    s.idle_cv.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->idle_cv.wait(
      lock, [this] { return state_->queue.empty() && state_->active == 0; });
}

std::size_t ThreadPool::cancel_pending() {
  std::queue<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    dropped.swap(state_->queue);
  }
  state_->idle_cv.notify_all();
  // Destroying a packaged_task before invocation breaks its promise; the
  // matching futures throw std::future_error(broken_promise) on get().
  return dropped.size();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

std::size_t ThreadPool::abandon() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
    dropped = state_->queue.size();
    std::queue<std::function<void()>>().swap(state_->queue);
  }
  abandoned_ = true;
  state_->work_cv.notify_all();
  state_->idle_cv.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.detach();
  return dropped;
}

}  // namespace treesched::exec
