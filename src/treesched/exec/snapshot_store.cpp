#include "treesched/exec/snapshot_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "treesched/util/assert.hpp"
#include "treesched/util/failpoint.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/hash.hpp"

namespace treesched::exec {

namespace {

constexpr char kEnvelopeMagic[] = "treesched-snapshot-v2";
constexpr char kManifestMagic[] = "treesched-snapmanifest-v1";

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string encode_snapshot_envelope(
    const std::vector<SnapshotSection>& sections) {
  std::string out = std::string(kEnvelopeMagic) + "\n";
  for (const SnapshotSection& s : sections) {
    TS_REQUIRE(!s.name.empty() &&
                   s.name.find_first_of(" \n") == std::string::npos,
               "snapshot envelope: section name must be one token");
    out += "section " + s.name + ' ' + std::to_string(s.payload.size()) +
           ' ' + std::to_string(util::fnv1a_64(s.payload)) + '\n';
    out += s.payload;
    out += '\n';
  }
  out += "whole " + std::to_string(util::fnv1a_64(out)) + '\n';
  return out;
}

std::vector<SnapshotSection> decode_snapshot_envelope(
    const std::string& bytes) {
  std::size_t pos = 0;
  auto read_line = [&](std::string& line) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) return false;
    line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };

  std::string line;
  TS_REQUIRE(read_line(line) && line == kEnvelopeMagic,
             "snapshot envelope: bad magic (corrupt, truncated, or from an "
             "unsupported version)");
  std::vector<SnapshotSection> out;
  for (;;) {
    const std::size_t header_pos = pos;
    TS_REQUIRE(read_line(line),
               "snapshot envelope: truncated before the whole-file "
               "fingerprint line");
    if (starts_with(line, "whole ")) {
      std::istringstream ls(line.substr(6));
      std::uint64_t fp = 0;
      ls >> fp;
      TS_REQUIRE(static_cast<bool>(ls),
                 "snapshot envelope: malformed whole-file fingerprint line");
      TS_REQUIRE(fp == util::fnv1a_64(bytes.substr(0, header_pos)),
                 "snapshot envelope: whole-file fingerprint mismatch "
                 "(corrupt bytes)");
      TS_REQUIRE(pos == bytes.size(),
                 "snapshot envelope: trailing bytes after the fingerprint");
      return out;
    }
    TS_REQUIRE(starts_with(line, "section "),
               "snapshot envelope: expected a section header, got '" + line +
                   "'");
    std::istringstream ls(line.substr(8));
    SnapshotSection sec;
    std::size_t len = 0;
    std::uint64_t fp = 0;
    ls >> sec.name >> len >> fp;
    TS_REQUIRE(static_cast<bool>(ls),
               "snapshot envelope: malformed section header '" + line + "'");
    // Length-driven: the payload may contain anything, including lines that
    // look like headers.
    TS_REQUIRE(pos + len < bytes.size(),
               "snapshot envelope: truncated payload in section '" +
                   sec.name + "'");
    sec.payload = bytes.substr(pos, len);
    pos += len;
    TS_REQUIRE(bytes[pos] == '\n',
               "snapshot envelope: section '" + sec.name +
                   "' payload length disagrees with the header");
    ++pos;
    TS_REQUIRE(fp == util::fnv1a_64(sec.payload),
               "snapshot envelope: section '" + sec.name +
                   "' fingerprint mismatch (corrupt bytes)");
    out.push_back(std::move(sec));
  }
}

const std::string& find_snapshot_section(
    const std::vector<SnapshotSection>& sections, const std::string& name) {
  for (const SnapshotSection& s : sections)
    if (s.name == name) return s.payload;
  throw std::invalid_argument("snapshot envelope: missing section '" + name +
                              "' (wrong producer or incompatible run mode)");
}

SnapshotStore::SnapshotStore(std::string base, int keep)
    : base_(std::move(base)), keep_(keep) {
  TS_REQUIRE(!base_.empty(), "snapshot store needs a base path");
  TS_REQUIRE(keep_ >= 1, "--snapshot-keep must be >= 1");
}

std::string SnapshotStore::gen_path(int index) const {
  std::ostringstream os;
  os << base_ << ".gen" << std::setw(3) << std::setfill('0') << index;
  return os.str();
}

void SnapshotStore::write_manifest(
    const std::vector<SnapshotGeneration>& oldest_first) {
  std::ostringstream os;
  os << kManifestMagic << '\n';
  os << "keep " << keep_ << '\n';
  for (const SnapshotGeneration& g : oldest_first)
    os << "gen " << g.index << ' ' << g.progress << ' ' << g.fingerprint
       << '\n';
  util::write_file_atomic(base_, os.str());
}

void SnapshotStore::write(std::uint64_t progress,
                          const std::string& envelope) {
  std::vector<SnapshotGeneration> gens;  // oldest first
  try {
    gens = generations();
    std::reverse(gens.begin(), gens.end());
  } catch (const SnapshotMissingError&) {
    // First snapshot of this run — start the manifest fresh.
  }
  const int index = gens.empty() ? 0 : gens.back().index + 1;
  const std::string path = gen_path(index);

  std::string bytes = envelope;
  if (const auto hit = util::failpoint_hit("snapshot.write")) {
    switch (hit->kind) {
      case util::FailKind::kEnospc:
        throw std::runtime_error("failed to write snapshot generation " +
                                 path + ": injected ENOSPC (failpoint "
                                 "snapshot.write)");
      case util::FailKind::kFsyncFail:
        throw std::runtime_error("failed to write snapshot generation " +
                                 path + ": injected fsync failure "
                                 "(failpoint snapshot.write)");
      case util::FailKind::kTornWrite:
        bytes = util::apply_torn(bytes);
        break;
      case util::FailKind::kBitFlip:
        bytes = util::apply_bit_flip(bytes);
        break;
      case util::FailKind::kShortRead:
        break;  // a read-side kind; meaningless at the write seam
    }
  }
  // The manifest records the INTENDED fingerprint: if the storage lied (torn
  // or flipped bytes above), verification at read time catches it.
  util::write_file_atomic(path, bytes);

  SnapshotGeneration g;
  g.index = index;
  g.progress = progress;
  g.fingerprint = util::fnv1a_64(envelope);
  g.path = path;
  gens.push_back(g);

  // Retention: drop the OLDEST healthy generations beyond the budget. Only
  // manifest-listed (healthy) files are ever deleted — quarantined ones were
  // renamed out of the manifest and stay on disk.
  while (gens.size() > static_cast<std::size_t>(keep_)) {
    std::error_code ec;
    std::filesystem::remove(gens.front().path, ec);
    gens.erase(gens.begin());
  }
  write_manifest(gens);
}

std::vector<SnapshotGeneration> SnapshotStore::generations() const {
  std::ifstream is(base_);
  if (!is)
    throw SnapshotMissingError("no snapshot manifest at '" + base_ +
                               "' (this run never wrote a snapshot)");
  std::string tag;
  is >> tag;
  TS_REQUIRE(is && tag == kManifestMagic,
             "snapshot manifest '" + base_ +
                 "': bad magic (corrupt or unsupported)");
  int keep = 0;
  is >> tag >> keep;
  TS_REQUIRE(is && tag == "keep" && keep >= 1,
             "snapshot manifest '" + base_ + "': malformed keep line");
  std::vector<SnapshotGeneration> gens;
  while (is >> tag) {
    TS_REQUIRE(tag == "gen",
               "snapshot manifest '" + base_ + "': unexpected token '" + tag +
                   "'");
    SnapshotGeneration g;
    is >> g.index >> g.progress >> g.fingerprint;
    TS_REQUIRE(static_cast<bool>(is),
               "snapshot manifest '" + base_ + "': truncated gen line");
    g.path = gen_path(g.index);
    gens.push_back(std::move(g));
  }
  std::reverse(gens.begin(), gens.end());  // newest first: the ladder order
  return gens;
}

std::optional<std::string> SnapshotStore::read(
    const SnapshotGeneration& gen) const {
  std::ifstream is(gen.path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = buf.str();
  if (const auto hit = util::failpoint_hit("snapshot.read")) {
    switch (hit->kind) {
      case util::FailKind::kShortRead:
        bytes = util::apply_torn(bytes);
        break;
      case util::FailKind::kBitFlip:
        bytes = util::apply_bit_flip(bytes);
        break;
      case util::FailKind::kEnospc:
      case util::FailKind::kFsyncFail:
      case util::FailKind::kTornWrite:
        break;  // write-side kinds; meaningless at the read seam
    }
  }
  return bytes;
}

void SnapshotStore::quarantine(const SnapshotGeneration& gen,
                               const std::string& reason) {
  const std::string qpath = gen.path + ".quarantined";
  std::error_code ec;
  std::filesystem::rename(gen.path, qpath, ec);
  // Crash-safe single-write append (tail-healed, fsynced): the quarantine
  // report is the post-mortem record of damaged generations, so it must not
  // itself tear or vanish when the resume ladder is interrupted mid-walk.
  // Failpoint site "quarantine.append". A failed append (ENOSPC and friends)
  // must not abort the ladder — quarantining is best-effort bookkeeping;
  // losing the log line is strictly better than losing the resume.
  std::ostringstream line;
  line << "quarantined gen " << gen.index << " progress " << gen.progress
       << " -> " << (ec ? gen.path + " (rename failed: file gone?)" : qpath)
       << ": " << reason;
  std::string text = line.str();
  std::replace(text.begin(), text.end(), '\n', ' ');
  try {
    util::append_line_durable(quarantine_log_path(), text,
                              "quarantine.append");
  } catch (const std::exception& e) {
    std::cerr << "[snapshot] warning: cannot append to quarantine report "
              << quarantine_log_path() << ": " << e.what() << '\n';
  }
}

}  // namespace treesched::exec
