// Fixed-size work-queue thread pool for the experiment layer.
//
// Tasks are submitted as callables and return std::future; exceptions thrown
// inside a task are captured and rethrown from future::get(). The destructor
// drains every queued task and joins the workers, so a pool on the stack
// behaves like a synchronous scope. For timeout recovery there are two escape
// hatches: cancel_pending() drops tasks that have not started (their futures
// report broken_promise), and abandon() additionally detaches the worker
// threads so the process can exit while a stuck task is still running.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace treesched::exec {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains all queued tasks, then joins (unless abandon() was called).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future yields its result or rethrows the
  /// exception it raised. Throws std::runtime_error after shutdown/abandon.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

  /// Drops every task that has not started yet; their futures throw
  /// std::future_error(broken_promise) on get(). Returns how many were
  /// dropped. In-flight tasks are unaffected.
  std::size_t cancel_pending();

  /// Stops accepting work, finishes everything queued, joins the workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Timeout escape hatch: stop accepting work, drop the queue, and detach
  /// the workers so a wedged task cannot block process exit. The pool is
  /// unusable afterwards. Returns the number of dropped queued tasks.
  std::size_t abandon();

 private:
  /// Shared between the pool handle and the workers; co-owned so detached
  /// workers (after abandon()) never touch freed memory.
  struct State {
    std::mutex mu;
    std::condition_variable work_cv;   ///< signals workers: task or stop
    std::condition_variable idle_cv;   ///< signals waiters: pool drained
    std::queue<std::function<void()>> queue;
    std::size_t active = 0;  ///< tasks currently executing
    bool stopping = false;   ///< no new submissions; workers drain and exit
  };

  void enqueue(std::function<void()> fn);
  static void worker_loop(State& s);

  std::shared_ptr<State> state_;
  std::vector<std::thread> workers_;
  bool abandoned_ = false;  ///< workers detached, pool dead
};

}  // namespace treesched::exec
