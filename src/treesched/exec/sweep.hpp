// Declarative policy × topology × eps × fault-rate × shed-policy × seed
// sweeps over the thread pool.
//
// A sweep expands its grid into a fixed task enumeration, gives task i the
// seed util::split_seed(base_seed, i), fans the tasks out over a ThreadPool,
// and gathers results by task index. Because no task ever observes thread
// count or completion order, the aggregated results — and the JSON emitted
// by sweep_json(result, /*include_timing=*/false) — are byte-identical for
// any --threads value, which is the determinism contract the ctest suite
// pins down.
//
// Resilience: tasks may be retried with capped exponential backoff
// (`retries`), completed measurements can be journaled to an append-only
// checkpoint file (`checkpoint`), and a later run with `resume` merges the
// journal instead of re-running finished cells — producing JSON
// byte-identical to an uninterrupted run. A cooperative `cancel` flag (set
// by treesched_sweep's SIGINT handler) stops the sweep cleanly: pending
// tasks are dropped, in-flight ones still land in the journal.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace treesched::exec {

struct SweepTask;

/// The declarative sweep description (the CLI flags of treesched_sweep map
/// onto this 1:1). The first block identifies the results; the second block
/// only controls execution and is excluded from the deterministic JSON.
struct SweepSpec {
  std::vector<std::string> policies{"paper"};  ///< run_named_policy names
  /// Topology names from experiments::standard_trees(); empty = all of them.
  std::vector<std::string> trees;
  /// Speed-augmentation grid; empty = experiments::epsilon_sweep().
  std::vector<double> eps_grid;
  int seeds = 3;                 ///< repetitions per grid cell
  std::uint64_t base_seed = 1;
  int jobs = 200;                ///< jobs per generated instance
  double load = 0.85;            ///< root-cut utilization

  /// Fault-injection grid dimension: node crash rates (failures per unit
  /// time per node, exponential MTBF). Empty = fault-free sweep with the
  /// classic 4-dimensional grid; non-empty adds the dimension, generates a
  /// seed-derived fault::FaultPlan per task, and measures flow-time
  /// degradation vs failure rate. A rate of 0 is the control cell.
  std::vector<double> fault_rates;
  double fault_mttr = 5.0;       ///< mean time to repair for crashed nodes
  /// Fault-window generation horizon; 0 = auto (twice the last release,
  /// at least 10 time units).
  double fault_horizon = 0.0;

  /// Overload-protection grid dimension: admission-control policy names
  /// ("none", "bounded-queue", "largest-first", "deadline"). Empty = no
  /// dimension and a grid (and JSON) byte-identical to pre-overload sweeps;
  /// non-empty adds the dimension and measures goodput / shed volume per
  /// policy. "none" is the control cell.
  std::vector<std::string> shed_policies;
  double queue_cap = 0.0;        ///< root-cut cap for the volume policies
  double deadline_slack = 8.0;   ///< deadline policy: admit iff F <= slack*p_j

  // Execution knobs — never part of the result identity.
  std::size_t threads = 0;       ///< 0 = default_thread_count()
  double timeout_ms = 0.0;       ///< per-task gather patience; 0 = none
  /// When non-empty: every task writes its instance trace and run log here
  /// (index-suffixed via sim::task_log_path) for offline treesched_audit.
  /// Segment-aware: a streaming task's segmented log derives its per-segment
  /// names via sim::segment_log_path FROM the task-suffixed base
  /// (`x.task000003.seg000001.log`), so recorded streaming sweeps never
  /// collide with each other or with their own manifest.
  std::string record_dir;
  /// Transient-failure retries per task; each attempt k sleeps
  /// retry_backoff_ms * min(2^(k-1), 32) before re-running.
  int retries = 0;
  double retry_backoff_ms = 5.0;
  /// Append-only checkpoint journal; empty disables checkpointing. Written
  /// line-by-line (flushed) as tasks finish, so a killed sweep loses at most
  /// the line being written — which the tolerant reader skips.
  std::string checkpoint;
  /// Load `checkpoint` and skip every task it already covers. The journal's
  /// spec fingerprint must match (resuming under a different grid throws).
  /// A missing journal file is not an error (fresh start).
  bool resume = false;
  /// Cooperative cancellation, polled while gathering: once true, pending
  /// tasks are dropped and the result is marked interrupted.
  const std::atomic<bool>* cancel = nullptr;
  /// Test hook, called before every attempt of every task; throwing
  /// simulates a transient task failure (consumed by the retry loop).
  std::function<void(const SweepTask&, int attempt)> inject_fault;
};

enum class TaskStatus { kOk, kTimedOut, kFailed, kCancelled };

/// One (policy, tree, eps, fault-rate, shed-policy, seed-index) measurement.
struct SweepTask {
  std::size_t index = 0;         ///< position in the fixed enumeration
  std::size_t policy_i = 0, tree_i = 0, eps_i = 0, fault_i = 0, shed_i = 0;
  int seed_index = 0;
  std::uint64_t seed = 0;        ///< split_seed(base_seed, index)
  TaskStatus status = TaskStatus::kOk;
  double ratio = 0.0;
  double alg_flow = 0.0;
  double lower_bound = 0.0;
  double mean_flow = 0.0;        ///< NaN when nothing completed (JSON null)
  double goodput = 0.0;          ///< completed / makespan; NaN when empty
  std::size_t completed = 0;     ///< jobs that finished
  std::size_t shed_jobs = 0;     ///< jobs shed or rejected by admission
  int attempts = 0;              ///< runs it took (0 = loaded from journal)
  double wall_ms = 0.0;          ///< timing metadata; not in deterministic JSON
  std::string error;             ///< kFailed: the exception message
};

/// Per-cell aggregate over the cell's completed repetitions.
struct SweepCellStats {
  std::size_t policy_i = 0, tree_i = 0, eps_i = 0, fault_i = 0, shed_i = 0;
  std::size_t count = 0;    ///< completed repetitions
  std::size_t skipped = 0;  ///< timed out, failed, or cancelled
  double ratio_mean = 0.0, ratio_ci_lo = 0.0, ratio_ci_hi = 0.0;
  double ratio_min = 0.0, ratio_max = 0.0;
  double mean_flow = 0.0;
  double goodput_mean = 0.0;     ///< NaN-excluding mean over repetitions
  std::size_t completed = 0;     ///< summed over repetitions
  std::size_t shed_jobs = 0;     ///< summed over repetitions
};

struct SweepResult {
  SweepSpec spec;                   ///< trees / eps grid resolved
  std::vector<SweepTask> tasks;
  std::vector<SweepCellStats> cells;
  std::size_t threads_used = 1;
  std::size_t resumed = 0;          ///< tasks satisfied from the checkpoint
  bool interrupted = false;         ///< the cancel flag fired mid-sweep
  double wall_ms = 0.0;             ///< orchestration wall clock
  double task_ms_sum = 0.0;         ///< sequential-cost estimate
};

/// Expands the grid and runs it. Throws std::invalid_argument on unknown
/// policy/tree names, an empty grid, or a checkpoint fingerprint mismatch.
/// Timed-out tasks are reported as skipped (never hang the sweep); their
/// workers are abandoned on exit.
SweepResult run_sweep(const SweepSpec& spec);

/// Worst achieved offered load over the sweep's (tree, eps) cells, probed by
/// generating one instance per cell exactly as the sweep would (rounded
/// sizes, paper-identical speeds) with the first task's seed stream.
/// treesched_sweep warns when this reaches 1 and no shedding cell is armed:
/// such a sweep measures a diverging queue, not a steady state.
double probe_offered_load(const SweepSpec& spec);

/// Machine-readable results. The default document is deterministic: spec,
/// per-cell stats (mean / bootstrap CI / min / max), per-task ratios, and
/// skip reports, all doubles printed with %.17g. include_timing appends a
/// "timing" block (threads, wall clock, speedup estimate) that naturally
/// varies run to run.
std::string sweep_json(const SweepResult& result, bool include_timing);
/// Atomic write (tmp + fsync + rename): a killed sweep never leaves a torn
/// JSON file behind.
void write_sweep_json_file(const std::string& path, const SweepResult& result,
                           bool include_timing);

/// The human-facing per-cell table.
std::string sweep_table(const SweepResult& result);

}  // namespace treesched::exec
