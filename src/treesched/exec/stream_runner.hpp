// Streaming endurance driver: unbounded arrival streams over a bounded
// memory footprint.
//
// The engine's Instance is immutable and sized up front, so an endurance run
// cannot hand it 10^8 jobs. Instead the runner windows the stream: it
// generates arrivals lazily (workload::JobStream), admits them into an
// engine built over the current window, and
//
//  * rotates when the system drains before the next arrival — a quiescent
//    instant: the finished window's records are dropped, a fresh engine over
//    the next window carries the metrics forward through the streaming
//    accumulator (sim::Metrics::enable_streaming);
//  * extends when the next arrival lands while work is in flight: the live
//    state moves to an engine over a larger window via Engine::save_state /
//    load_state, which is byte-exact.
//
// Because rotation happens only at quiescent instants and extension is
// byte-exact, every schedule decision, metric bit, and run-log byte is
// INDEPENDENT of the window quantum — the windowing is invisible.
//
// Snapshots: every `snapshot_every` arrivals the runner force-commits the
// segmented run log and writes one checksummed snapshot GENERATION
// (exec/snapshot_store.hpp): a treesched-snapshot-v2 envelope holding the
// stream cursors, policy decision state, writer chain position, full engine
// state, and — when shedding is on — the admission controller's saturation
// estimator. Generations rotate under a manifest with a keep budget. A run
// resumed from a snapshot replays byte-identically: same metrics bits, same
// segment files, same manifest — the kill-and-resume differential the
// endurance CI leg checks. Snapshot points sit at arrival boundaries, after
// a full recorder drain, which is what makes them safe commit points for
// the segment writer.
//
// Resume walks a SELF-HEALING LADDER: generations are verified newest
// first; a missing or corrupt generation is skipped (corrupt files are
// quarantined, never deleted) and the run falls back to the newest valid
// one, cross-checking the segmented run-log chain as it lands. A clean
// snapshot from a different run spec raises SnapshotSpecMismatchError; no
// manifest at all raises SnapshotMissingError; a fully exhausted ladder
// raises SnapshotUnrecoverableError with a one-line actionable report —
// treesched_run maps the three to distinct exit codes.
//
// Streaming restrictions (TS_REQUIREd or rejected eagerly): Poisson root
// arrivals with unit weights, identical endpoints, whole-job forwarding
// (chunk 0), no fault injection, and a policy whose decision state
// round-trips through AssignmentPolicy::stream_state (paper, closest,
// random, round-robin, least-volume, least-count, two-choice).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "treesched/core/speed_profile.hpp"
#include "treesched/core/tree.hpp"
#include "treesched/guard/config.hpp"
#include "treesched/overload/config.hpp"
#include "treesched/sim/metrics.hpp"
#include "treesched/sim/priority.hpp"
#include "treesched/workload/stream.hpp"

namespace treesched::exec {

struct StreamRunnerConfig {
  workload::StreamSpec stream;   ///< the arrival process
  std::uint64_t total_jobs = 0;  ///< arrivals to consume; > 0
  /// Window quantum: jobs per engine window (and per extension step). Pure
  /// memory/speed tuning — results are window-invariant (see file comment).
  std::size_t window = 4096;
  std::string policy = "paper";
  double eps = 0.5;
  std::uint64_t policy_seed = 1;  ///< for the randomized policies
  sim::NodePolicy node_policy = sim::NodePolicy::kSjf;
  overload::ShedConfig shed;     ///< admission control (validated eagerly)
  bool slow_queries = false;     ///< EngineConfig::slow_queries passthrough
  /// Segmented run-log manifest path ("" = no recording).
  std::string record_path;
  std::size_t segment_cap = 4096;
  /// Arrivals between snapshots (0 = no snapshots; requires snapshot_path).
  std::uint64_t snapshot_every = 0;
  /// Snapshot manifest path; generations land next to it as .genNNN files.
  std::string snapshot_path;
  /// Healthy snapshot generations to retain (--snapshot-keep, >= 1).
  int snapshot_keep = 3;
  /// Resume from the snapshot manifest at this path instead of starting
  /// fresh ("" = fresh). Resume verifies generations newest-first and falls
  /// back across corrupt ones (see the file comment).
  std::string resume_snapshot;
  /// Exit right after writing the N-th snapshot of THIS process (0 = never)
  /// — the deterministic stand-in for kill -9 in the endurance smoke tests.
  std::uint64_t die_after_snapshot = 0;
  /// Seconds between stderr heartbeats (0 = silent).
  double progress_every = 0.0;
  /// Supervision: watchdog deadline, governor ceilings, guard sidecar log
  /// (guard/config.hpp). Guard events never touch a run-log or metric byte —
  /// they are wall-clock-driven, so they live outside the deterministic
  /// fingerprint chain. The governor's window shrinking adjusts only the
  /// RUNTIME quantum; `window` above stays the spec identity, so snapshots
  /// from a degraded run still resume under the original flags.
  guard::GuardConfig guard;
  /// Child status JSON (treesched-child-status-v1) refreshed atomically a
  /// few times per second for the supervisor's wedge watch ("" = off).
  std::string status_file;
  /// TEST ONLY: when global arrival N is reached, freeze (poll loop, status
  /// writes and watchdog polls continue, arrivals do not) for guard_stall_s
  /// wall seconds — the deterministic stand-in for a wedged window in the
  /// watchdog/breaker end-to-end tests. 0 = off.
  std::uint64_t guard_stall_at = 0;
  double guard_stall_s = 0.0;
  /// Graceful-stop flag (set by the SIGINT/SIGTERM handler), polled at
  /// arrival boundaries: when it goes true the runner flushes the open
  /// segment, writes one final snapshot generation, and returns with
  /// cancelled=true (treesched_run exits 130; resumable).
  const std::atomic<bool>* cancel = nullptr;
};

struct StreamRunnerResult {
  /// True when die_after_snapshot stopped the run early.
  bool interrupted = false;
  /// True when the cancel flag (SIGINT/SIGTERM) stopped the run early; the
  /// open segment was flushed and a final snapshot generation written.
  bool cancelled = false;
  /// Deepest degradation-ladder stage the governor reached this process.
  guard::Stage stage = guard::Stage::kNormal;
  std::uint64_t arrivals = 0;       ///< arrivals processed (admit or reject)
  std::uint64_t snapshots_written = 0;  ///< by this process
  std::size_t max_window = 0;       ///< peak window size (extension depth)
  std::size_t segments_written = 0; ///< run-log segments closed
  /// The streaming metrics accumulator at the end of the run (complete only
  /// when !interrupted).
  sim::StreamAccumulator acc;
  /// Serialized AdmissionController durable state (the saturation
  /// estimator's windowed readings) at the end of the run; empty when
  /// shedding is off. Chaos tests byte-compare it across kill/resume.
  std::string overload_state;
  /// Windowed rho-hat over the root cut at the end of the run (0 when
  /// shedding is off or nothing was admitted).
  double rho_hat_root = 0.0;
};

/// Runs the stream to total_jobs arrivals (or the next snapshot when
/// die_after_snapshot triggers). Throws std::invalid_argument on config
/// errors (unknown/unsupported policy, bad shed config, snapshot flags
/// without a path, spec mismatch on resume) and the typed snapshot errors
/// from exec/snapshot_store.hpp on resume-ladder outcomes.
StreamRunnerResult run_stream(std::shared_ptr<const Tree> tree,
                              const SpeedProfile& speeds,
                              const StreamRunnerConfig& cfg);

}  // namespace treesched::exec
