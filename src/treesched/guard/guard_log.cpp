#include "treesched/guard/guard_log.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "treesched/util/fs.hpp"

namespace treesched::guard {

namespace {

constexpr const char* kMagic = "treesched-guardlog-v1";
/// Tolerance for the audit's stall-vs-deadline comparisons: the writer
/// serializes with %.6f, so a stall of exactly 2x the deadline can round a
/// microsecond short of it.
constexpr double kEps = 1e-5;

std::string fmt_seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

}  // namespace

GuardLogWriter::GuardLogWriter(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  const bool has_content = in.good() && in.peek() != std::ifstream::traits_type::eof();
  if (!has_content) util::append_line_durable(path_, kMagic);
}

void GuardLogWriter::append(const std::string& line) {
  util::append_line_durable(path_, line);
}

void GuardLogWriter::ceiling(const GovernorConfig& gov,
                             double watchdog_deadline_s) {
  std::ostringstream os;
  os << "ceiling rss " << gov.rss_ceiling_bytes << " queue "
     << gov.queue_ceiling << " arena " << gov.arena_ceiling << " deadline "
     << fmt_seconds(watchdog_deadline_s);
  append(os.str());
}

void GuardLogWriter::governor_escalate(double t_s, Stage from, Stage to,
                                       const Pressure& p) {
  std::ostringstream os;
  os << "guard " << fmt_seconds(t_s) << " governor escalate "
     << stage_name(from) << " " << stage_name(to) << " rss " << p.rss_bytes
     << " queue " << p.event_queue << " arena " << p.arena;
  append(os.str());
}

void GuardLogWriter::watchdog(double t_s, const std::string& action,
                              double stalled_s, std::uint64_t arrivals) {
  std::ostringstream os;
  os << "guard " << fmt_seconds(t_s) << " watchdog " << action << " stalled "
     << fmt_seconds(stalled_s) << " arrivals " << arrivals;
  append(os.str());
}

void GuardLogWriter::supervisor(double t_s, const std::string& detail) {
  std::ostringstream os;
  os << "guard " << fmt_seconds(t_s) << " supervisor " << detail;
  append(os.str());
}

namespace {

struct AuditState {
  GuardAuditResult result;
  // Per child incarnation (reset by each `ceiling` line):
  bool have_ceiling = false;
  GovernorConfig ceilings;
  double deadline_s = 0.0;
  Stage stage = Stage::kNormal;
  int watchdog_rank = 0;  ///< 0 none yet, 1 log, 2 snapshot, 3 abort
  double last_child_t = -1.0;
  // Supervisor lines share the supervisor's own epoch across the file.
  double last_super_t = -1.0;

  void violate(std::size_t line_no, std::string msg) {
    result.violations.push_back({line_no, std::move(msg)});
  }
};

int watchdog_rank_of(const std::string& action) {
  if (action == "log") return 1;
  if (action == "snapshot") return 2;
  if (action == "abort") return 3;
  return 0;
}

bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stoull(tok, &pos);
    return pos == tok.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stod(tok, &pos);
    return pos == tok.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Expects `key <number>` next in the stream; false on any mismatch.
bool expect_kv_u64(std::istringstream& is, const char* key,
                   std::uint64_t& out) {
  std::string k, v;
  if (!(is >> k >> v) || k != key) return false;
  return parse_u64(v, out);
}

/// Parses one line; returns false (with `why`) on malformed input. Updates
/// the audit state and appends violations for semantic rule breaches.
bool audit_line(AuditState& st, std::size_t line_no, const std::string& line,
                std::string& why) {
  std::istringstream is(line);
  std::string head;
  is >> head;

  if (head == "ceiling") {
    std::uint64_t rss = 0, queue = 0, arena = 0;
    std::string dkey, dval;
    if (!expect_kv_u64(is, "rss", rss) || !expect_kv_u64(is, "queue", queue) ||
        !expect_kv_u64(is, "arena", arena) || !(is >> dkey >> dval) ||
        dkey != "deadline") {
      why = "malformed ceiling line";
      return false;
    }
    double deadline = 0.0;
    if (!parse_double(dval, deadline)) {
      why = "malformed ceiling deadline";
      return false;
    }
    // New child incarnation: ladder and watchdog episode start over, and the
    // child clock restarts at its own epoch.
    st.have_ceiling = true;
    st.ceilings.rss_ceiling_bytes = rss;
    st.ceilings.queue_ceiling = static_cast<std::size_t>(queue);
    st.ceilings.arena_ceiling = static_cast<std::size_t>(arena);
    st.deadline_s = deadline;
    st.stage = Stage::kNormal;
    st.watchdog_rank = 0;
    st.last_child_t = -1.0;
    ++st.result.incarnations;
    return true;
  }

  if (head != "guard") {
    why = "unknown record type '" + head + "'";
    return false;
  }

  std::string t_tok, kind;
  if (!(is >> t_tok >> kind)) {
    why = "truncated guard line";
    return false;
  }
  double t = 0.0;
  if (!parse_double(t_tok, t)) {
    why = "malformed guard timestamp";
    return false;
  }

  if (kind == "supervisor") {
    std::string detail;
    if (!(is >> detail)) {
      why = "supervisor line missing event";
      return false;
    }
    ++st.result.supervisor_events;
    if (st.last_super_t >= 0.0 && t + kEps < st.last_super_t)
      st.violate(line_no, "supervisor timestamp went backwards");
    st.last_super_t = t;
    return true;
  }

  // governor / watchdog lines come from a child incarnation.
  if (!st.have_ceiling) {
    st.violate(line_no, std::string(kind) +
                            " event before any ceiling line (no armed "
                            "configuration to judge it against)");
  }
  if (st.last_child_t >= 0.0 && t + kEps < st.last_child_t)
    st.violate(line_no, "child timestamp went backwards within incarnation");
  st.last_child_t = t;

  if (kind == "governor") {
    std::string verb, from_s, to_s;
    std::uint64_t rss = 0, queue = 0, arena = 0;
    if (!(is >> verb >> from_s >> to_s) || verb != "escalate" ||
        !expect_kv_u64(is, "rss", rss) || !expect_kv_u64(is, "queue", queue) ||
        !expect_kv_u64(is, "arena", arena)) {
      why = "malformed governor line";
      return false;
    }
    Stage from, to;
    try {
      from = parse_stage(from_s);
      to = parse_stage(to_s);
    } catch (const std::invalid_argument& e) {
      why = e.what();
      return false;
    }
    ++st.result.governor_escalations;
    if (from != st.stage)
      st.violate(line_no, "escalation from '" + std::string(stage_name(from)) +
                              "' but incarnation is at '" +
                              stage_name(st.stage) + "'");
    if (static_cast<int>(to) != static_cast<int>(from) + 1)
      st.violate(line_no,
                 "ladder must escalate exactly one stage at a time ('" +
                     std::string(stage_name(from)) + "' -> '" +
                     stage_name(to) + "')");
    if (st.have_ceiling) {
      const auto& c = st.ceilings;
      const bool under_pressure =
          (c.rss_ceiling_bytes > 0 && rss >= c.rss_ceiling_bytes) ||
          (c.queue_ceiling > 0 && queue >= c.queue_ceiling) ||
          (c.arena_ceiling > 0 && arena >= c.arena_ceiling);
      if (!under_pressure)
        st.violate(line_no,
                   "escalation without recorded pressure at or over any "
                   "armed ceiling");
    }
    st.stage = to;
    if (static_cast<int>(to) > static_cast<int>(st.result.max_stage))
      st.result.max_stage = to;
    return true;
  }

  if (kind == "watchdog") {
    std::string action, skey, sval, akey, aval;
    if (!(is >> action >> skey >> sval >> akey >> aval) || skey != "stalled" ||
        akey != "arrivals") {
      why = "malformed watchdog line";
      return false;
    }
    double stalled = 0.0;
    std::uint64_t arrivals = 0;
    if (!parse_double(sval, stalled) || !parse_u64(aval, arrivals)) {
      why = "malformed watchdog numbers";
      return false;
    }
    const int rank = watchdog_rank_of(action);
    if (rank == 0) {
      why = "unknown watchdog action '" + action + "'";
      return false;
    }
    ++st.result.watchdog_events;
    // Escalation order within an episode is log -> snapshot -> abort; a
    // fresh `log` may start a new episode (the window made progress, then
    // wedged again), but snapshot/abort without their predecessors cannot.
    if (rank == 1) {
      st.watchdog_rank = 1;
    } else if (rank == st.watchdog_rank + 1) {
      st.watchdog_rank = rank;
    } else {
      st.violate(line_no, "watchdog '" + action +
                              "' without the preceding escalation step");
      st.watchdog_rank = rank;
    }
    if (st.have_ceiling && st.deadline_s > 0.0 &&
        stalled + kEps < st.deadline_s * rank)
      st.violate(line_no, "watchdog '" + action + "' with stall " + sval +
                              "s under " + std::to_string(rank) +
                              "x the armed deadline");
    return true;
  }

  why = "unknown guard event kind '" + kind + "'";
  return false;
}

}  // namespace

GuardAuditResult audit_guard_log(const std::string& path) {
  AuditState st;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    st.violate(0, "cannot open guard log '" + path + "'");
    return std::move(st.result);
  }

  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  // A line the crash tore (no trailing newline) is tolerated ONLY at the
  // very end of the file; buffer one line of lookahead to know which is last.
  std::optional<std::pair<std::size_t, std::string>> pending;
  bool file_ends_in_newline = true;
  {
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size > 0) {
      in.seekg(-1, std::ios::end);
      file_ends_in_newline = in.get() == '\n';
    }
    in.clear();
    in.seekg(0, std::ios::beg);
  }

  auto process = [&](std::size_t no, const std::string& text, bool is_last) {
    if (text.empty()) return;
    if (!saw_magic) {
      if (text != kMagic)
        st.violate(no, std::string("first record is not '") + kMagic + "'");
      saw_magic = true;
      return;  // the header line carries no event, valid or not
    }
    std::string why;
    if (!audit_line(st, no, text, why)) {
      if (is_last && !file_ends_in_newline) return;  // torn tail: tolerated
      st.violate(no, why);
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (pending) process(pending->first, pending->second, false);
    pending = {line_no, line};
  }
  if (pending) process(pending->first, pending->second, true);

  if (!saw_magic) st.violate(0, "guard log is empty");
  st.result.ok = st.result.violations.empty();
  return std::move(st.result);
}

}  // namespace treesched::guard
