// Injectable monotone clock for the supervision subsystem.
//
// Everything in guard/ that reasons about wall time — watchdog deadlines,
// restart backoff, the crash-loop breaker window — takes a Clock* so tests
// can replay exact timelines with FakeClock and CI never sleeps to assert a
// schedule. The real implementation wraps util::Stopwatch, the repo's
// sanctioned wall-clock shim (see the det-wallclock lint rule): guard code
// never reads ambient time directly, and none of these readings can reach a
// schedule, a metric, or a run-log byte — guard timestamps live only in the
// guard sidecar log and the health file, both outside the deterministic
// fingerprint chain.
#pragma once

#include "treesched/util/stopwatch.hpp"

namespace treesched::guard {

/// Monotone seconds since an arbitrary per-instance epoch.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_s() = 0;
};

/// Production clock: seconds since construction, via util::Stopwatch.
class SteadyClock final : public Clock {
 public:
  double now_s() override { return watch_.elapsed_seconds(); }

 private:
  util::Stopwatch watch_;
};

/// Test clock: advances only when told to, so deadline and backoff
/// schedules replay deterministically (and jitterlessly) in unit tests.
class FakeClock final : public Clock {
 public:
  double now_s() override { return t_; }
  void advance(double s) { t_ += s; }
  void set(double t) { t_ = t; }

 private:
  double t_ = 0.0;
};

}  // namespace treesched::guard
