// Supervision-subsystem configuration: watchdog deadlines, resource
// ceilings, and the degradation-ladder stages shared by the governor, the
// stream runner, the guard log, and treesched_audit --guard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace treesched::guard {

/// The staged degradation ladder, in escalation order. The governor walks
/// one stage per sustained ceiling breach instead of letting the kernel OOM
/// killer decide:
///
///   normal -> streaming-metrics -> shrunk-window -> tightened-shed -> abort
///
/// Each stage trades a little fidelity or goodput for memory headroom; only
/// when every mitigation is exhausted does the run abort — with a snapshot
/// generation already on disk, so the supervisor (or an operator) resumes
/// instead of losing the run.
enum class Stage : std::uint8_t {
  kNormal = 0,
  /// Per-job metric records replaced by streaming sketches (MetricsMode::
  /// kStreaming). Streaming runs are born in this mode; the transition is
  /// still logged so the audited ladder order is the same everywhere.
  kStreamingMetrics = 1,
  /// Stream window quantum halved (results are window-invariant, so this
  /// only trims memory, never changes a schedule byte).
  kShrunkWindow = 2,
  /// Admission control tightened (effective queue cap / deadline slack
  /// halved) so the shed policy drains backlog harder.
  kTightenedShed = 3,
  /// Final rung: force a snapshot generation, then abort with exit 71.
  kAbort = 4,
};

inline const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kNormal: return "normal";
    case Stage::kStreamingMetrics: return "streaming-metrics";
    case Stage::kShrunkWindow: return "shrunk-window";
    case Stage::kTightenedShed: return "tightened-shed";
    case Stage::kAbort: return "abort";
  }
  return "?";
}

inline Stage parse_stage(const std::string& s) {
  if (s == "normal") return Stage::kNormal;
  if (s == "streaming-metrics") return Stage::kStreamingMetrics;
  if (s == "shrunk-window") return Stage::kShrunkWindow;
  if (s == "tightened-shed") return Stage::kTightenedShed;
  if (s == "abort") return Stage::kAbort;
  throw std::invalid_argument("unknown degradation stage '" + s + "'");
}

struct WatchdogConfig {
  /// Wall-clock budget for arrival progress within a stream window. The
  /// watchdog escalates at 1x (log), 2x (force snapshot + segment rotate),
  /// and 3x (controlled abort, exit 70) the deadline. 0 disarms.
  double window_deadline_s = 0.0;

  bool enabled() const { return window_deadline_s > 0.0; }
};

/// Resource ceilings. A metric with ceiling 0 is unchecked. One sustained
/// breach of any checked ceiling escalates the ladder by exactly one stage;
/// `cooldown_samples` pressure samples must pass between escalations so a
/// mitigation gets a chance to bite before the next rung fires.
struct GovernorConfig {
  std::uint64_t rss_ceiling_bytes = 0;  ///< peak/current RSS (util/mem)
  std::size_t queue_ceiling = 0;        ///< engine event-queue entries
  std::size_t arena_ceiling = 0;        ///< engine job-arena slots
  std::size_t sample_every = 256;       ///< arrivals between pressure samples
  std::size_t cooldown_samples = 4;     ///< samples between escalations

  bool enabled() const {
    return rss_ceiling_bytes > 0 || queue_ceiling > 0 || arena_ceiling > 0;
  }
};

/// One pressure sample, recorded verbatim in every governor guard line so
/// the audit can verify an escalation fired only under real pressure.
struct Pressure {
  std::uint64_t rss_bytes = 0;
  std::size_t event_queue = 0;
  std::size_t arena = 0;
};

struct GuardConfig {
  WatchdogConfig watchdog;
  GovernorConfig governor;
  /// Guard sidecar log path ("" = no guard log; events still reach stderr).
  /// Deliberately a separate file from the segmented run log: guard events
  /// are wall-clock-driven, so they must stay outside the deterministic
  /// fingerprint chain the kill/resume differential byte-compares.
  std::string guard_log;

  bool any() const { return watchdog.enabled() || governor.enabled(); }
};

/// Thrown by the stream runner when the watchdog's final escalation fires
/// (wedged window; a snapshot generation is already on disk). treesched_run
/// maps it to exit 70.
class WatchdogAbortError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when the governor exhausts the degradation ladder (sustained
/// resource pressure after every mitigation; snapshot already on disk).
/// treesched_run maps it to exit 71.
class GovernorAbortError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace treesched::guard
