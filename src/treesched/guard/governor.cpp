#include "treesched/guard/governor.hpp"

namespace treesched::guard {

Governor::Governor(GovernorConfig cfg) : cfg_(cfg) {}

bool Governor::breached(const Pressure& p) const {
  return (cfg_.rss_ceiling_bytes > 0 && p.rss_bytes >= cfg_.rss_ceiling_bytes) ||
         (cfg_.queue_ceiling > 0 && p.event_queue >= cfg_.queue_ceiling) ||
         (cfg_.arena_ceiling > 0 && p.arena >= cfg_.arena_ceiling);
}

std::optional<Stage> Governor::observe(const Pressure& p) {
  if (!cfg_.enabled() || stage_ == Stage::kAbort) return std::nullopt;
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return std::nullopt;
  }
  if (!breached(p)) return std::nullopt;
  stage_ = static_cast<Stage>(static_cast<int>(stage_) + 1);
  cooldown_left_ = cfg_.cooldown_samples;
  return stage_;
}

}  // namespace treesched::guard
