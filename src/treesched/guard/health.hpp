// Health/status files for supervised runs.
//
// Two small JSON documents, both refreshed with util::write_file_atomic so
// an observer (operator, CI, the supervisor itself) never reads a torn
// file:
//
//   Child status (`--guard-status <path>`, schema treesched-child-status-v1)
//     Written by the stream child on every heartbeat: arrivals processed,
//     current window index, rho_hat at the root, degradation stage, and the
//     child-clock timestamp. The supervisor reads it to (a) merge progress
//     into the health file and (b) detect a totally wedged child — the
//     `arrivals` field frozen past the heartbeat deadline — which even an
//     in-process watchdog cannot report if the process is truly stuck.
//
//   Health file (`--health-file <path>`, schema treesched-health-v1)
//     Written by the supervisor: child pid, lifecycle state (starting |
//     running | backoff | gaveup | done | interrupted), restart counters,
//     last exit code/signal, plus the latest child status fields.
//
// Both are flat JSON objects; the matching read_* helpers do flat key
// extraction (no JSON dependency) and return nullopt on a missing or
// unparsable file, which callers treat as "no status yet".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "treesched/guard/config.hpp"

namespace treesched::guard {

struct ChildStatus {
  std::uint64_t arrivals = 0;
  std::uint64_t window = 0;
  double rho_hat = 0.0;
  Stage stage = Stage::kNormal;
  double t_s = 0.0;  ///< child-clock seconds at the write
};

std::string encode_child_status(const ChildStatus& s);
void write_child_status(const std::string& path, const ChildStatus& s);
std::optional<ChildStatus> read_child_status(const std::string& path);

struct HealthStatus {
  int pid = 0;
  std::string state = "starting";
  std::uint64_t restarts = 0;
  std::uint64_t consecutive_crashes = 0;
  int last_exit_code = 0;
  int last_signal = 0;
  /// Latest child status, merged in when a child status file exists.
  bool have_child = false;
  ChildStatus child;
};

std::string encode_health(const HealthStatus& h);
void write_health(const std::string& path, const HealthStatus& h);
std::optional<HealthStatus> read_health(const std::string& path);

/// Flat-JSON field extraction used by the readers above (and by tests):
/// finds `"key":` at the top level of a one-object document. No nesting,
/// no escapes in strings — exactly what the two schemas above emit.
std::optional<double> json_number_field(const std::string& doc,
                                        const std::string& key);
std::optional<std::string> json_string_field(const std::string& doc,
                                             const std::string& key);

}  // namespace treesched::guard
