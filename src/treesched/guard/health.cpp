#include "treesched/guard/health.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "treesched/util/fs.hpp"

namespace treesched::guard {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::optional<double> json_number_field(const std::string& doc,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  while (i < doc.size() && std::isspace(static_cast<unsigned char>(doc[i])))
    ++i;
  try {
    std::size_t used = 0;
    const double v = std::stod(doc.substr(i), &used);
    if (used == 0) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::string> json_string_field(const std::string& doc,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = doc.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < doc.size() &&
         std::isspace(static_cast<unsigned char>(doc[pos])))
    ++pos;
  if (pos >= doc.size() || doc[pos] != '"') return std::nullopt;
  const auto end = doc.find('"', pos + 1);
  if (end == std::string::npos) return std::nullopt;
  return doc.substr(pos + 1, end - pos - 1);
}

std::string encode_child_status(const ChildStatus& s) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"treesched-child-status-v1\",\n"
     << "  \"arrivals\": " << s.arrivals << ",\n"
     << "  \"window\": " << s.window << ",\n"
     << "  \"rho_hat\": " << fmt_double(s.rho_hat) << ",\n"
     << "  \"stage\": \"" << stage_name(s.stage) << "\",\n"
     << "  \"t_s\": " << fmt_double(s.t_s) << "\n"
     << "}\n";
  return os.str();
}

void write_child_status(const std::string& path, const ChildStatus& s) {
  util::write_file_atomic(path, encode_child_status(s));
}

std::optional<ChildStatus> read_child_status(const std::string& path) {
  const auto doc = slurp(path);
  if (!doc) return std::nullopt;
  const auto schema = json_string_field(*doc, "schema");
  if (!schema || *schema != "treesched-child-status-v1") return std::nullopt;
  ChildStatus s;
  if (const auto v = json_number_field(*doc, "arrivals"))
    s.arrivals = static_cast<std::uint64_t>(*v);
  if (const auto v = json_number_field(*doc, "window"))
    s.window = static_cast<std::uint64_t>(*v);
  if (const auto v = json_number_field(*doc, "rho_hat")) s.rho_hat = *v;
  if (const auto v = json_string_field(*doc, "stage")) {
    try {
      s.stage = parse_stage(*v);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  if (const auto v = json_number_field(*doc, "t_s")) s.t_s = *v;
  return s;
}

std::string encode_health(const HealthStatus& h) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"treesched-health-v1\",\n"
     << "  \"pid\": " << h.pid << ",\n"
     << "  \"state\": \"" << h.state << "\",\n"
     << "  \"restarts\": " << h.restarts << ",\n"
     << "  \"consecutive_crashes\": " << h.consecutive_crashes << ",\n"
     << "  \"last_exit_code\": " << h.last_exit_code << ",\n"
     << "  \"last_signal\": " << h.last_signal;
  // Child fields only when a child status was merged: the reader keys
  // have_child off the presence of `arrivals`, so emitting zeros here would
  // fabricate a child on the round trip.
  if (h.have_child)
    os << ",\n"
       << "  \"arrivals\": " << h.child.arrivals << ",\n"
       << "  \"window\": " << h.child.window << ",\n"
       << "  \"rho_hat\": " << fmt_double(h.child.rho_hat) << ",\n"
       << "  \"stage\": \"" << stage_name(h.child.stage) << "\"\n";
  else
    os << "\n";
  os << "}\n";
  return os.str();
}

void write_health(const std::string& path, const HealthStatus& h) {
  util::write_file_atomic(path, encode_health(h));
}

std::optional<HealthStatus> read_health(const std::string& path) {
  const auto doc = slurp(path);
  if (!doc) return std::nullopt;
  const auto schema = json_string_field(*doc, "schema");
  if (!schema || *schema != "treesched-health-v1") return std::nullopt;
  HealthStatus h;
  if (const auto v = json_number_field(*doc, "pid"))
    h.pid = static_cast<int>(*v);
  if (const auto v = json_string_field(*doc, "state")) h.state = *v;
  if (const auto v = json_number_field(*doc, "restarts"))
    h.restarts = static_cast<std::uint64_t>(*v);
  if (const auto v = json_number_field(*doc, "consecutive_crashes"))
    h.consecutive_crashes = static_cast<std::uint64_t>(*v);
  if (const auto v = json_number_field(*doc, "last_exit_code"))
    h.last_exit_code = static_cast<int>(*v);
  if (const auto v = json_number_field(*doc, "last_signal"))
    h.last_signal = static_cast<int>(*v);
  if (const auto v = json_number_field(*doc, "arrivals")) {
    h.have_child = true;
    h.child.arrivals = static_cast<std::uint64_t>(*v);
  }
  if (const auto v = json_number_field(*doc, "window"))
    h.child.window = static_cast<std::uint64_t>(*v);
  if (const auto v = json_number_field(*doc, "rho_hat")) h.child.rho_hat = *v;
  if (const auto v = json_string_field(*doc, "stage")) {
    try {
      h.child.stage = parse_stage(*v);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  return h;
}

}  // namespace treesched::guard
