#include "treesched/guard/watchdog.hpp"

namespace treesched::guard {

Watchdog::Watchdog(WatchdogConfig cfg, Clock* clock)
    : cfg_(cfg), clock_(clock), last_progress_t_(clock->now_s()) {}

void Watchdog::progress(std::uint64_t arrivals) {
  arrivals_ = arrivals;
  last_progress_t_ = clock_->now_s();
  fired_rank_ = 0;
}

double Watchdog::stalled_s() { return clock_->now_s() - last_progress_t_; }

Watchdog::Action Watchdog::poll() {
  if (!cfg_.enabled() || fired_rank_ >= 3) return Action::kNone;
  const double stalled = stalled_s();
  // Fire the next rank the moment its deadline multiple passes; one rank per
  // poll keeps the log -> snapshot -> abort order even if polls are sparse
  // and the stall already overshot several multiples.
  const int due_rank = fired_rank_ + 1;
  if (stalled < cfg_.window_deadline_s * due_rank) return Action::kNone;
  fired_rank_ = due_rank;
  switch (due_rank) {
    case 1: return Action::kLog;
    case 2: return Action::kSnapshot;
    default: return Action::kAbort;
  }
}

const char* Watchdog::action_name(Action a) {
  switch (a) {
    case Action::kNone: return "none";
    case Action::kLog: return "log";
    case Action::kSnapshot: return "snapshot";
    case Action::kAbort: return "abort";
  }
  return "?";
}

}  // namespace treesched::guard
