// Progress watchdog for streaming runs: detects a wedged stream window —
// the event loop ticking without completing arrivals, or not ticking at
// all — by wall-clock deadline, and escalates in three staged steps:
//
//   1x deadline  -> kLog       (loud stderr + guard-log line)
//   2x deadline  -> kSnapshot  (force a snapshot generation + segment
//                               rotate, so no progress is lost if the stall
//                               never clears)
//   3x deadline  -> kAbort     (controlled abort, exit 70, snapshot intact)
//
// The watchdog itself is pure bookkeeping over an injectable Clock: the
// stream runner reports progress and polls from the engine-observer tick
// callback, and performs whatever action poll() returns. Acting inside the
// tick callback matters — a wedged window by definition never reaches the
// next arrival boundary, so deferring actions there would never fire.
//
// None of this can perturb determinism: a fired watchdog only writes guard
// sidecar lines and forces a snapshot at an instant the engine is already
// consistent; schedules, metrics, and run-log bytes are untouched.
#pragma once

#include <cstdint>

#include "treesched/guard/clock.hpp"
#include "treesched/guard/config.hpp"

namespace treesched::guard {

class Watchdog {
 public:
  enum class Action { kNone, kLog, kSnapshot, kAbort };

  /// `clock` must outlive the watchdog. A disabled config (deadline 0)
  /// makes every poll() return kNone.
  Watchdog(WatchdogConfig cfg, Clock* clock);

  /// Report forward progress (an arrival fully processed, or a window
  /// rotation). Re-arms the deadline and resets the escalation ladder.
  void progress(std::uint64_t arrivals);

  /// Returns the next escalation step that has come due, at most one step
  /// per call and each step at most once per stall episode.
  Action poll();

  /// Seconds since the last reported progress (0 before any progress).
  double stalled_s();

  /// Arrival count at the last reported progress.
  std::uint64_t arrivals() const { return arrivals_; }

  static const char* action_name(Action a);

 private:
  WatchdogConfig cfg_;
  Clock* clock_;
  double last_progress_t_;
  std::uint64_t arrivals_ = 0;
  int fired_rank_ = 0;  ///< 0 none, 1 log, 2 snapshot, 3 abort
};

}  // namespace treesched::guard
