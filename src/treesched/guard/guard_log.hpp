// Guard sidecar log (treesched-guardlog-v1): the audited record of every
// supervision event — watchdog escalations, governor degradation-ladder
// transitions, supervisor restarts.
//
// Guard events are wall-clock-driven and therefore nondeterministic, so
// they deliberately live OUTSIDE the segmented run log: a guard line must
// never change a segment byte or the fingerprint chain the kill/resume
// differential byte-compares. The sidecar is line-oriented and appended
// with util::append_line_durable — one write(2) per record, torn tails
// healed — so the supervisor and its child can share one file and a crash
// mid-append can tear at most the final line (which the parser tolerates).
//
// Format (one record per line):
//
//   treesched-guardlog-v1
//   ceiling rss <bytes> queue <n> arena <n> deadline <s>
//   guard <t_s> governor escalate <from> <to> rss <bytes> queue <n> arena <n>
//   guard <t_s> watchdog <log|snapshot|abort> stalled <s> arrivals <n>
//   guard <t_s> supervisor <start|exit|backoff|giveup|done|interrupted> ...
//
// A `ceiling` line is written once per child incarnation at startup and
// resets the audit's notion of ladder stage, watchdog episode, and child
// time base — restarted children legitimately begin at stage normal with a
// fresh clock. Timestamps are seconds since the writing process started
// (guard::Clock), monotone per incarnation (child lines) and across the
// whole file for supervisor lines.
//
// `audit_guard_log` re-verifies the supervision invariants offline
// (treesched_audit --guard): the ladder fired in ORDER (one stage at a
// time, never skipping, never regressing within an incarnation), every
// escalation happened UNDER RECORDED PRESSURE (some observed metric at or
// over its configured nonzero ceiling), watchdog actions escalate
// log -> snapshot -> abort with recorded stall times over the armed
// deadline multiples, and timestamps are monotone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "treesched/guard/config.hpp"

namespace treesched::guard {

/// Durable line appender for guard events. Safe for two processes
/// (supervisor + child) to hold writers on the same path concurrently.
class GuardLogWriter {
 public:
  /// Creates the file with its header line when absent or empty; otherwise
  /// appends to what is there.
  explicit GuardLogWriter(std::string path);

  /// Child-incarnation preamble: the armed ceilings (0 = unchecked) and the
  /// watchdog deadline, against which the audit judges every later line.
  void ceiling(const GovernorConfig& gov, double watchdog_deadline_s);

  void governor_escalate(double t_s, Stage from, Stage to, const Pressure& p);
  /// `action` is one of "log", "snapshot", "abort".
  void watchdog(double t_s, const std::string& action, double stalled_s,
                std::uint64_t arrivals);
  /// Free-form supervisor event ("start pid 123", "exit code 1",
  /// "backoff 0.5 restarts 2", "giveup crashes 5 window 60", ...).
  void supervisor(double t_s, const std::string& detail);

  const std::string& path() const { return path_; }

 private:
  void append(const std::string& line);

  std::string path_;
};

struct GuardAuditViolation {
  std::size_t line = 0;  ///< 1-based line number in the guard log
  std::string message;
};

struct GuardAuditResult {
  bool ok = false;
  std::vector<GuardAuditViolation> violations;
  std::size_t incarnations = 0;       ///< ceiling lines seen
  std::size_t governor_escalations = 0;
  std::size_t watchdog_events = 0;
  std::size_t supervisor_events = 0;
  Stage max_stage = Stage::kNormal;   ///< deepest ladder stage reached
};

/// Offline verification of a guard log (rules in the file comment). A
/// missing file or bad header is a violation, not an exception; real I/O
/// errors still throw std::runtime_error.
GuardAuditResult audit_guard_log(const std::string& path);

}  // namespace treesched::guard
