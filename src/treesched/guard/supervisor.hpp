// Crash-loop-safe auto-restart for endurance runs (treesched_run
// --supervise).
//
// The supervisor fork/execs the streaming child, watches it through a
// waitpid poll loop, and on a restartable death relaunches it — resuming
// from the newest VERIFIED snapshot generation when a manifest exists (the
// child's own self-healing ladder does the verification and fallback), or
// from scratch otherwise (streaming runs are deterministic from the seed,
// so a fresh start converges to the same bytes, just more slowly).
//
// RestartPolicy is the pure, clock-injected decision core: capped
// exponential backoff between restarts, a consecutive-crash counter that a
// stable run resets, and the crash-loop breaker — N crashes inside a
// sliding T-second window and the supervisor gives up with an actionable
// report and exit 69 rather than burn the machine retrying a determinist
// failure forever.
//
// Child exit classification:
//   0                 -> done, pass through
//   130               -> interrupted (graceful SIGINT/SIGTERM), pass through
//   64, 2, 67         -> fatal: config/validation/spec errors that a
//                        restart cannot fix; pass through immediately
//   65, 66            -> snapshot unrecoverable/missing: restart FRESH
//                        (counts as a crash for the breaker)
//   signal, 1, 70, 71 -> restartable crash (resume from snapshot)
//
// External wedge detection: the in-process watchdog cannot report if the
// child is truly stuck, so the supervisor also watches the child's status
// file — the `arrivals` field frozen past --heartbeat-deadline-s means
// SIGKILL + restart. The health file (--health-file) is refreshed
// atomically on every poll so operators and CI always see a coherent
// {pid, state, restarts, window, rho_hat, stage} document.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "treesched/guard/clock.hpp"
#include "treesched/guard/config.hpp"
#include "treesched/guard/health.hpp"

namespace treesched::guard {

/// Exit code when the crash-loop breaker trips (EX_UNAVAILABLE).
constexpr int kExitCrashLoop = 69;

struct RestartPolicyConfig {
  std::size_t breaker_max = 5;   ///< crashes within the window to give up
  double breaker_window_s = 60.0;
  double backoff_base_s = 0.5;
  double backoff_cap_s = 30.0;
  /// A child that lived at least this long resets the consecutive-crash
  /// counter (the crash loop, if any, was broken).
  double stable_s = 10.0;
};

/// Pure restart decision core. All time flows through the injected Clock,
/// so tests replay exact backoff schedules and breaker trip points with a
/// FakeClock — no sleeping, no jitter.
class RestartPolicy {
 public:
  RestartPolicy(RestartPolicyConfig cfg, Clock* clock);

  /// Record a child launch (now).
  void on_start();

  struct Decision {
    bool give_up = false;    ///< breaker tripped
    double backoff_s = 0.0;  ///< wait before the next launch
  };

  /// Record a child crash (now) and decide what happens next. Capped
  /// exponential backoff: min(cap, base * 2^(consecutive-1)).
  Decision on_crash();

  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t consecutive() const { return consecutive_; }
  /// Crashes currently inside the breaker window.
  std::size_t crashes_in_window() const { return crash_times_.size(); }
  const RestartPolicyConfig& config() const { return cfg_; }

 private:
  RestartPolicyConfig cfg_;
  Clock* clock_;
  double start_t_ = 0.0;
  bool running_ = false;
  std::uint64_t restarts_ = 0;
  std::uint64_t consecutive_ = 0;
  std::deque<double> crash_times_;  ///< sliding breaker window
};

struct SupervisorConfig {
  /// Child argv for a FRESH start (argv[0] = executable path). The
  /// supervisor appends `--resume-snapshot <snapshot_base>` itself when the
  /// manifest exists, so `child_argv` must NOT carry a resume flag.
  std::vector<std::string> child_argv;
  /// Snapshot manifest base path ("" = never resume, always fresh).
  std::string snapshot_base;
  std::string health_file;        ///< "" = no health file
  std::string child_status_file;  ///< "" = no progress merge / wedge watch
  std::string guard_log;          ///< "" = no guard log
  /// Child status `arrivals` frozen this long -> SIGKILL + restart (0 off).
  double heartbeat_deadline_s = 0.0;
  double poll_interval_s = 0.05;
  RestartPolicyConfig restart;
};

/// Runs the supervision loop to completion. Returns the process exit code
/// for treesched_run: the child's own code when it finished (0 / 130 /
/// fatal config errors), or kExitCrashLoop (69) when the breaker tripped.
int run_supervisor(const SupervisorConfig& cfg);

}  // namespace treesched::guard
