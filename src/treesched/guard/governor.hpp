// Resource governor: the decision core of the staged degradation ladder.
//
// The stream runner samples resource pressure (RSS, engine event-queue
// size, job-arena footprint) every `sample_every` arrivals and feeds each
// sample to observe(). A sample at or over any armed ceiling escalates the
// ladder by EXACTLY one stage; `cooldown_samples` further samples must then
// pass before the next rung can fire, so each mitigation gets a chance to
// relieve pressure before the ladder concludes it did not.
//
// The governor always starts at Stage::kNormal — even for streaming runs
// that are already using streaming metrics — so the audited ladder order is
// identical everywhere; the runner simply treats the kStreamingMetrics rung
// as a no-op when already satisfied. Applying the mitigations (switching
// metrics mode, shrinking the window quantum, tightening admission) is the
// runner's job; the governor only decides WHEN, which keeps it a pure,
// deterministically testable function of the sample sequence.
#pragma once

#include <optional>

#include "treesched/guard/config.hpp"

namespace treesched::guard {

class Governor {
 public:
  explicit Governor(GovernorConfig cfg);

  /// Feed one pressure sample. Returns the stage to escalate TO when this
  /// sample fires a rung (caller applies the mitigation and writes the
  /// guard line), std::nullopt otherwise. Never escalates past kAbort.
  std::optional<Stage> observe(const Pressure& p);

  /// True when any armed ceiling is at or below the sampled value.
  bool breached(const Pressure& p) const;

  Stage stage() const { return stage_; }
  const GovernorConfig& config() const { return cfg_; }

 private:
  GovernorConfig cfg_;
  Stage stage_ = Stage::kNormal;
  /// Samples seen since the last escalation; primed past the cooldown so
  /// the very first breaching sample can fire.
  std::size_t cooldown_left_ = 0;
};

}  // namespace treesched::guard
