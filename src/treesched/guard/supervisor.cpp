#include "treesched/guard/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "treesched/guard/guard_log.hpp"

namespace treesched::guard {

RestartPolicy::RestartPolicy(RestartPolicyConfig cfg, Clock* clock)
    : cfg_(cfg), clock_(clock) {}

void RestartPolicy::on_start() {
  start_t_ = clock_->now_s();
  running_ = true;
}

RestartPolicy::Decision RestartPolicy::on_crash() {
  const double now = clock_->now_s();
  if (running_ && now - start_t_ >= cfg_.stable_s) consecutive_ = 0;
  running_ = false;
  ++consecutive_;

  crash_times_.push_back(now);
  while (!crash_times_.empty() &&
         now - crash_times_.front() > cfg_.breaker_window_s)
    crash_times_.pop_front();

  Decision d;
  if (crash_times_.size() >= cfg_.breaker_max) {
    d.give_up = true;
    return d;
  }
  ++restarts_;
  double backoff = cfg_.backoff_base_s;
  for (std::uint64_t i = 1; i < consecutive_ && backoff < cfg_.backoff_cap_s;
       ++i)
    backoff *= 2.0;
  d.backoff_s = std::min(backoff, cfg_.backoff_cap_s);
  return d;
}

namespace {

/// Last delivered stop signal; the poll loop forwards it to the child so a
/// ^C on the supervisor becomes a graceful child shutdown (exit 130).
volatile std::sig_atomic_t g_stop_signal = 0;

void on_stop_signal(int sig) { g_stop_signal = sig; }

class SignalForwarding {
 public:
  SignalForwarding() {
    g_stop_signal = 0;
    struct ::sigaction sa{};
    sa.sa_handler = &on_stop_signal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
  }
  ~SignalForwarding() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }

 private:
  struct ::sigaction old_int_{};
  struct ::sigaction old_term_{};
};

bool manifest_exists(const std::string& base) {
  std::error_code ec;
  return !base.empty() && std::filesystem::exists(base, ec) && !ec;
}

pid_t spawn_child(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // Still here: exec failed. 64 (usage) tells the supervisor not to retry.
    std::cerr << "error: cannot exec '" << argv[0]
              << "': " << std::strerror(errno) << '\n';
    ::_exit(64);
  }
  return pid;
}

struct ChildExit {
  int code = 0;      ///< exit code when exited normally
  int signal = 0;    ///< terminating signal when killed (code unset)
  bool by_signal() const { return signal != 0; }
};

std::string describe_exit(const ChildExit& e) {
  std::ostringstream os;
  if (e.by_signal())
    os << "signal " << e.signal << " (" << ::strsignal(e.signal) << ")";
  else
    os << "exit " << e.code;
  return os.str();
}

enum class Outcome { kDone, kFatal, kRestartResume, kRestartFresh };

Outcome classify(const ChildExit& e) {
  if (e.by_signal()) return Outcome::kRestartResume;
  switch (e.code) {
    case 0:
    case 130:
      return Outcome::kDone;
    case 64:  // usage/config — deterministic, a restart reruns the same error
    case 2:   // validation failure
    case 67:  // snapshot from a different run spec
      return Outcome::kFatal;
    case 65:  // every generation corrupt — the resume path is poisoned
    case 66:  // no manifest behind the resume flag
      return Outcome::kRestartFresh;
    default:  // 1, 70, 71, anything else unexpected
      return Outcome::kRestartResume;
  }
}

class SupervisorLoop {
 public:
  explicit SupervisorLoop(const SupervisorConfig& cfg) : cfg_(cfg) {
    if (!cfg_.guard_log.empty()) log_.emplace(cfg_.guard_log);
    policy_.emplace(cfg_.restart, &clock_);
  }

  int run() {
    SignalForwarding forwarding;
    bool resume_poisoned = false;

    for (;;) {
      const bool resume =
          !resume_poisoned && manifest_exists(cfg_.snapshot_base);
      const pid_t pid = launch(resume);
      const ChildExit ended = watch(pid);
      health_.last_exit_code = ended.by_signal() ? 0 : ended.code;
      health_.last_signal = ended.signal;
      supervisor_log("exit " + describe_exit(ended));

      switch (classify(ended)) {
        case Outcome::kDone:
          finish(ended.code == 130 ? "interrupted" : "done");
          return ended.code;
        case Outcome::kFatal:
          std::cerr << "[supervise] child failed with a non-restartable "
                       "error ("
                    << describe_exit(ended) << "); giving up\n";
          finish("gaveup");
          return ended.code;
        case Outcome::kRestartFresh:
          resume_poisoned = true;
          break;
        case Outcome::kRestartResume:
          resume_poisoned = false;
          break;
      }

      const RestartPolicy::Decision d = policy_->on_crash();
      health_.restarts = policy_->restarts();
      health_.consecutive_crashes = policy_->consecutive();
      if (d.give_up) {
        report_crash_loop(ended);
        finish("gaveup");
        return kExitCrashLoop;
      }
      supervisor_log("backoff " + fmt(d.backoff_s) +
                     " restarts " + std::to_string(policy_->restarts()));
      std::cerr << "[supervise] child " << describe_exit(ended)
                << "; restart " << policy_->restarts() << " in "
                << fmt(d.backoff_s) << "s\n";
      if (!sleep_with_health(d.backoff_s)) {
        // Stop signal during backoff: nothing to forward, exit as if the
        // child had been interrupted gracefully.
        finish("interrupted");
        return 130;
      }
    }
  }

 private:
  static std::string fmt(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::vector<std::string> child_argv(bool resume) const {
    std::vector<std::string> argv = cfg_.child_argv;
    if (resume) {
      argv.push_back("--resume-snapshot");
      argv.push_back(cfg_.snapshot_base);
    }
    return argv;
  }

  pid_t launch(bool resume) {
    const pid_t pid = spawn_child(child_argv(resume));
    policy_->on_start();
    health_.pid = static_cast<int>(pid);
    health_.state = "running";
    supervisor_log("start pid " + std::to_string(pid) +
                   (resume ? " resume" : " fresh"));
    write_health();
    // The wedge watch starts fresh with each incarnation.
    last_arrivals_.reset();
    last_change_t_ = clock_.now_s();
    return pid;
  }

  /// Polls until the child is reaped. Forwards stop signals; SIGKILLs a
  /// wedged child (status-file arrivals frozen past the deadline).
  ChildExit watch(pid_t pid) {
    bool forwarded = false;
    bool wedge_killed = false;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        ChildExit e;
        if (WIFSIGNALED(status)) e.signal = WTERMSIG(status);
        else e.code = WEXITSTATUS(status);
        if (wedge_killed && e.by_signal() && e.signal == SIGKILL)
          supervisor_log("wedge-kill reaped pid " + std::to_string(pid));
        return e;
      }
      if (r < 0 && errno != EINTR) {
        ChildExit e;
        e.code = 1;  // lost track of the child; treat as a crash
        return e;
      }

      if (g_stop_signal != 0 && !forwarded) {
        forwarded = true;
        supervisor_log("forward signal " +
                       std::to_string(static_cast<int>(g_stop_signal)));
        ::kill(pid, static_cast<int>(g_stop_signal));
      }

      refresh_child_status();
      if (!wedge_killed && !forwarded && cfg_.heartbeat_deadline_s > 0.0 &&
          clock_.now_s() - last_change_t_ > cfg_.heartbeat_deadline_s) {
        wedge_killed = true;
        supervisor_log("wedge pid " + std::to_string(pid) + " frozen " +
                       fmt(clock_.now_s() - last_change_t_) + "s");
        std::cerr << "[supervise] child " << pid
                  << " made no progress for over " << cfg_.heartbeat_deadline_s
                  << "s; killing it\n";
        ::kill(pid, SIGKILL);
      }
      write_health();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(cfg_.poll_interval_s));
    }
  }

  void refresh_child_status() {
    if (cfg_.child_status_file.empty()) return;
    if (const auto s = read_child_status(cfg_.child_status_file)) {
      if (!last_arrivals_ || *last_arrivals_ != s->arrivals) {
        last_arrivals_ = s->arrivals;
        last_change_t_ = clock_.now_s();
      }
      health_.have_child = true;
      health_.child = *s;
    }
  }

  /// Sleeps `s` seconds in poll slices, keeping the health file fresh.
  /// Returns false if a stop signal arrived mid-backoff.
  bool sleep_with_health(double s) {
    health_.state = "backoff";
    const double until = clock_.now_s() + s;
    while (clock_.now_s() < until) {
      if (g_stop_signal != 0) return false;
      write_health();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(cfg_.poll_interval_s, until - clock_.now_s())));
    }
    return true;
  }

  void report_crash_loop(const ChildExit& last) {
    supervisor_log("giveup crashes " +
                   std::to_string(policy_->crashes_in_window()) + " window " +
                   fmt(cfg_.restart.breaker_window_s));
    std::cerr
        << "[supervise] CRASH LOOP: " << policy_->crashes_in_window()
        << " crashes within " << cfg_.restart.breaker_window_s
        << "s (last: " << describe_exit(last) << "); giving up.\n"
        << "[supervise] the failure is likely deterministic — inspect the "
           "child's stderr above"
        << (cfg_.snapshot_base.empty()
                ? std::string(".")
                : ", the quarantine report at " + cfg_.snapshot_base +
                      ".quarantine.log, and the newest generation under " +
                      cfg_.snapshot_base + ".genNNN.")
        << '\n'
        << "[supervise] rerun without --supervise to reproduce in the "
           "foreground.\n";
  }

  void finish(const std::string& state) {
    health_.state = state;
    health_.pid = 0;
    supervisor_log(state);
    write_health();
  }

  void supervisor_log(const std::string& detail) {
    if (log_) log_->supervisor(clock_.now_s(), detail);
  }

  void write_health() {
    if (!cfg_.health_file.empty()) write_health(cfg_.health_file);
  }
  void write_health(const std::string& path) {
    guard::write_health(path, health_);
  }

  SupervisorConfig cfg_;
  SteadyClock clock_;
  std::optional<GuardLogWriter> log_;
  std::optional<RestartPolicy> policy_;
  HealthStatus health_;
  std::optional<std::uint64_t> last_arrivals_;
  double last_change_t_ = 0.0;
};

}  // namespace

int run_supervisor(const SupervisorConfig& cfg) {
  return SupervisorLoop(cfg).run();
}

}  // namespace treesched::guard
