# Sanitizer wiring for all treesched targets.
#
# TREESCHED_SANITIZE is a semicolon- or comma-separated list of sanitizers:
#   address, undefined, leak, thread  (thread cannot combine with the others)
#
# The flags are attached to the `treesched_sanitizers` INTERFACE target,
# which `treesched_warnings` links — so every target in the repo (src, tools,
# tests, bench, examples) picks them up without per-directory changes.
# The CMakePresets.json `asan-ubsan` / `tsan` presets set this option.

set(TREESCHED_SANITIZE "" CACHE STRING
    "Semicolon/comma-separated sanitizers for all treesched targets \
(address;undefined;leak;thread). Empty = none.")

add_library(treesched_sanitizers INTERFACE)

function(_treesched_configure_sanitizers)
  if(TREESCHED_SANITIZE STREQUAL "")
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(WARNING "TREESCHED_SANITIZE is only supported with GCC/Clang; "
                    "ignoring for ${CMAKE_CXX_COMPILER_ID}")
    return()
  endif()

  string(REPLACE "," ";" _requested "${TREESCHED_SANITIZE}")
  set(_known address undefined leak thread)
  set(_enabled "")
  foreach(_san IN LISTS _requested)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR "TREESCHED_SANITIZE: unknown sanitizer '${_san}' "
                          "(known: ${_known})")
    endif()
    list(APPEND _enabled ${_san})
  endforeach()
  list(REMOVE_DUPLICATES _enabled)

  if("thread" IN_LIST _enabled AND NOT _enabled STREQUAL "thread")
    message(FATAL_ERROR "TREESCHED_SANITIZE: 'thread' cannot be combined "
                        "with other sanitizers (got: ${_enabled})")
  endif()

  list(JOIN _enabled "," _fsan)
  set(_flags -fsanitize=${_fsan} -fno-omit-frame-pointer)
  if("undefined" IN_LIST _enabled)
    # Trap-free: report and continue so one run surfaces every finding;
    # -fno-sanitize-recover makes any report a hard failure for CI.
    list(APPEND _flags -fno-sanitize-recover=all)
  endif()

  target_compile_options(treesched_sanitizers INTERFACE ${_flags})
  target_link_options(treesched_sanitizers INTERFACE ${_flags})
  message(STATUS "treesched: sanitizers enabled: ${_enabled}")
endfunction()

_treesched_configure_sanitizers()
